// Parameterized end-to-end property sweep of the quadtree protocols over a
// grid of (Δ, d, noise) configurations: the protocol must either fail
// cleanly (Bob unchanged) or produce a valid repaired set, and on success
// must never degrade EMD beyond the level-ℓ* cell-diameter bound.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "geometry/emd.h"
#include "recon/quadtree_recon.h"
#include "workload/generator.h"

namespace rsr {
namespace recon {
namespace {

using workload::CloudSpec;
using workload::MakeReplicaPair;
using workload::NoiseKind;
using workload::PerturbationSpec;
using workload::ReplicaPair;

// (log2 delta, d, noise scale)
using Config = std::tuple<int, int, double>;

class QuadtreeSweep : public ::testing::TestWithParam<Config> {};

TEST_P(QuadtreeSweep, EndToEndInvariants) {
  const auto [log_delta, d, noise] = GetParam();
  const int64_t delta = int64_t{1} << log_delta;
  const size_t n = 160;
  const size_t k = 6;

  for (uint64_t seed = 1; seed <= 3; ++seed) {
    CloudSpec cloud;
    cloud.universe = MakeUniverse(delta, d);
    cloud.n = n;
    PerturbationSpec spec;
    spec.noise = noise > 0 ? NoiseKind::kGaussian : NoiseKind::kNone;
    spec.noise_scale = noise;
    spec.outliers = k;
    const ReplicaPair pair = MakeReplicaPair(cloud, spec, seed);

    ProtocolContext ctx;
    ctx.universe = cloud.universe;
    ctx.seed = seed * 7919;
    QuadtreeParams params;
    params.k = k;
    QuadtreeReconciler protocol(ctx, params);
    transport::Channel channel;
    const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);

    // Invariant 1: one round, Alice-to-Bob only.
    EXPECT_EQ(channel.stats().rounds, 1u);

    // Invariant 2: size preservation and universe containment.
    EXPECT_EQ(result.bob_final.size(), n);
    for (const Point& p : result.bob_final) {
      ASSERT_TRUE(ctx.universe.Contains(p));
    }

    if (!result.success) {
      // Clean failure: Bob unchanged.
      EXPECT_EQ(result.bob_final, pair.bob);
      continue;
    }

    // Invariant 3: the repair moves at most decoded_entries cells' worth
    // of points, each by at most one cell diameter at the chosen level.
    const double before = ExactEmd(pair.alice, pair.bob, Metric::kL2);
    const double after =
        ExactEmd(pair.alice, result.bob_final, Metric::kL2);
    const double cell_diam =
        static_cast<double>(int64_t{1} << result.chosen_level) *
        std::sqrt(static_cast<double>(d));
    const double slack =
        cell_diam * static_cast<double>(result.decoded_entries) * n;
    EXPECT_LE(after, before + slack) << "ld=" << log_delta << " d=" << d
                                     << " noise=" << noise;

    // Invariant 4: determinism — rerunning gives identical output.
    transport::Channel channel2;
    const ReconResult again = protocol.Run(pair.alice, pair.bob, &channel2);
    EXPECT_EQ(again.bob_final, result.bob_final);
    EXPECT_EQ(channel2.stats().total_bits, channel.stats().total_bits);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, QuadtreeSweep,
    ::testing::Values(Config{8, 1, 0.0}, Config{8, 1, 1.0},
                      Config{10, 2, 0.0}, Config{10, 2, 1.0},
                      Config{10, 2, 4.0}, Config{14, 2, 2.0},
                      Config{10, 3, 1.0}, Config{8, 4, 1.0},
                      Config{20, 2, 8.0}, Config{12, 1, 16.0}));

class AdaptiveSweep : public ::testing::TestWithParam<Config> {};

TEST_P(AdaptiveSweep, EndToEndInvariants) {
  const auto [log_delta, d, noise] = GetParam();
  const int64_t delta = int64_t{1} << log_delta;
  const size_t n = 160, k = 6;

  CloudSpec cloud;
  cloud.universe = MakeUniverse(delta, d);
  cloud.n = n;
  PerturbationSpec spec;
  spec.noise = noise > 0 ? NoiseKind::kGaussian : NoiseKind::kNone;
  spec.noise_scale = noise;
  spec.outliers = k;
  const ReplicaPair pair = MakeReplicaPair(cloud, spec, 5);

  ProtocolContext ctx;
  ctx.universe = cloud.universe;
  ctx.seed = 271828;
  QuadtreeParams params;
  params.k = k;
  AdaptiveQuadtreeReconciler protocol(ctx, params);
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);

  EXPECT_GE(channel.stats().rounds, 3u);
  EXPECT_EQ(result.bob_final.size(), n);
  for (const Point& p : result.bob_final) {
    ASSERT_TRUE(ctx.universe.Contains(p));
  }
  if (result.success) {
    EXPECT_GE(result.chosen_level, 0);
    EXPECT_LE(result.chosen_level,
              MakeUniverse(delta, d).BitsPerCoord());
  } else {
    EXPECT_EQ(result.bob_final, pair.bob);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AdaptiveSweep,
    ::testing::Values(Config{10, 2, 0.0}, Config{10, 2, 2.0},
                      Config{14, 2, 4.0}, Config{10, 3, 1.0},
                      Config{20, 2, 16.0}));

TEST(LevelStrideTest, CutsBytesAndStillReconciles) {
  CloudSpec cloud;
  cloud.universe = MakeUniverse(1 << 16, 2);
  cloud.n = 256;
  PerturbationSpec spec;
  spec.noise = NoiseKind::kGaussian;
  spec.noise_scale = 2.0;
  spec.outliers = 8;
  const ReplicaPair pair = MakeReplicaPair(cloud, spec, 9);

  ProtocolContext ctx;
  ctx.universe = cloud.universe;
  ctx.seed = 33;

  QuadtreeParams dense;
  dense.k = 8;
  QuadtreeParams strided = dense;
  strided.level_stride = 3;

  transport::Channel dense_channel, strided_channel;
  const ReconResult dense_result =
      QuadtreeReconciler(ctx, dense).Run(pair.alice, pair.bob,
                                         &dense_channel);
  const ReconResult strided_result =
      QuadtreeReconciler(ctx, strided).Run(pair.alice, pair.bob,
                                           &strided_channel);
  ASSERT_TRUE(dense_result.success);
  ASSERT_TRUE(strided_result.success);
  // Stride 3 ships ~1/3 of the levels.
  EXPECT_LT(strided_channel.stats().total_bits,
            dense_channel.stats().total_bits / 2);
  // It can only decode at a ladder level >= the dense choice.
  EXPECT_GE(strided_result.chosen_level, dense_result.chosen_level);
  // Quality degrades by at most the coarser cell diameter factor.
  const double dense_emd =
      ExactEmd(pair.alice, dense_result.bob_final, Metric::kL2);
  const double strided_emd =
      ExactEmd(pair.alice, strided_result.bob_final, Metric::kL2);
  const double factor = static_cast<double>(
      int64_t{1} << (strided_result.chosen_level -
                     dense_result.chosen_level));
  EXPECT_LE(strided_emd, dense_emd * factor * 4 + 100.0);
}

}  // namespace
}  // namespace recon
}  // namespace rsr
