// Observability endpoint tests (DESIGN.md §12): the "@stats" admin verb
// round-trips a Prometheus registry rendering over in-process pipes and
// loopback TCP from BOTH serving hosts, the syncd HTTP/1.0 /metrics
// responder answers curl-shaped requests, per-session trace spans carry
// the phase breakdown, and the threaded host's per-session read deadline
// actually fires (rsr_sync_idle_timeouts_total — the counter DumpStats
// always printed but only the async host used to feed).

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/pipe_stream.h"
#include "net/tcp.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/async_sync_server.h"
#include "server/sync_client.h"
#include "server/sync_server.h"
#include "workload/generator.h"

namespace rsr {
namespace server {
namespace {

recon::ProtocolContext Ctx() {
  recon::ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 14, 2);
  ctx.seed = 99;
  return ctx;
}

recon::ProtocolParams Params() {
  recon::ProtocolParams params;
  params.k = 8;
  return params;
}

PointSet Canonical(size_t n) {
  workload::CloudSpec spec;
  spec.universe = Ctx().universe;
  spec.n = n;
  spec.shape = workload::CloudShape::kClusters;
  Rng rng(2024);
  return workload::GenerateCloud(spec, &rng);
}

/// One full-transfer sync against a threaded host over a pipe pair (the
/// protocol that always succeeds regardless of sketch sizing).
SyncOutcome PipeSync(SyncServer* server, const PointSet& client_points) {
  SyncClientOptions options;
  options.context = Ctx();
  options.params = Params();
  const SyncClient client(options);
  auto [server_end, client_end] = net::PipeStream::CreatePair();
  std::thread serve([server, end = std::move(server_end)]() mutable {
    server->ServeConnection(end.get());
  });
  const SyncOutcome outcome =
      client.Sync(client_end.get(), "full-transfer", client_points);
  serve.join();
  return outcome;
}

/// Polls `predicate` for up to a second (session settling on the async
/// host happens on the shard thread after the client's close).
bool Eventually(const std::function<bool()>& predicate) {
  for (int i = 0; i < 200; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return predicate();
}

TEST(StatsVerbTest, ThreadedHostAnswersOverPipe) {
  const PointSet canonical = Canonical(32);
  SyncServerOptions options;
  options.context = Ctx();
  options.params = Params();
  SyncServer server(canonical, options);
  const SyncOutcome sync = PipeSync(&server, Canonical(16));
  ASSERT_TRUE(sync.handshake_ok);
  ASSERT_TRUE(sync.result.success);

  std::string text;
  auto [server_end, client_end] = net::PipeStream::CreatePair();
  std::thread serve([&server, end = std::move(server_end)]() mutable {
    server.ServeConnection(end.get());
  });
  EXPECT_TRUE(FetchStats(client_end.get(), &text));
  serve.join();

  // A valid Prometheus exposition carrying the session the sync settled.
  EXPECT_EQ(text.rfind("# HELP ", 0), 0u);
  EXPECT_NE(text.find("# TYPE rsr_sync_sessions_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rsr_sync_sessions_total{protocol=\"full-transfer\","
                      "outcome=\"ok\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rsr_sync_session_seconds_bucket{protocol="
                      "\"full-transfer\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("rsr_store_"), std::string::npos);

  // The @stats session itself settles under its own protocol label.
  EXPECT_EQ(server.metrics_registry().CounterValue(
                "rsr_sync_sessions_total",
                {{"protocol", "@stats"}, {"outcome", "ok"}}),
            1u);
  // And the byte-compatible DumpStats() is rebuilt from the same registry.
  const std::string dump = server.DumpStats();
  EXPECT_NE(dump.find("full-transfer"), std::string::npos);
  EXPECT_EQ(server.metrics().syncs_completed, 2u);  // sync + @stats
}

TEST(StatsVerbTest, ThreadedHostAnswersOverTcp) {
  const PointSet canonical = Canonical(32);
  SyncServerOptions options;
  options.context = Ctx();
  options.params = Params();
  options.worker_threads = 2;
  SyncServer server(canonical, options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  std::string text;
  auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  EXPECT_TRUE(FetchStats(stream.get(), &text));
  server.Stop();
  EXPECT_NE(text.find("rsr_sync_connections_accepted_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE rsr_sync_bytes_total counter"),
            std::string::npos);
}

TEST(StatsVerbTest, AsyncHostAnswersOverTcp) {
  const PointSet canonical = Canonical(32);
  AsyncSyncServerOptions options;
  options.context = Ctx();
  options.params = Params();
  options.shards = 1;
  AsyncSyncServer server(canonical, options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  // One real sync first, so the scrape carries a session.
  SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  const SyncClient client(client_options);
  auto sync_stream = net::TcpStream::Connect("127.0.0.1", server.port());
  ASSERT_NE(sync_stream, nullptr);
  const SyncOutcome sync =
      client.Sync(sync_stream.get(), "full-transfer", Canonical(16));
  ASSERT_TRUE(sync.result.success);

  std::string text;
  auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  EXPECT_TRUE(FetchStats(stream.get(), &text));
  EXPECT_EQ(text.rfind("# HELP ", 0), 0u);
  EXPECT_NE(text.find("rsr_sync_sessions_total{protocol=\"full-transfer\","
                      "outcome=\"ok\"} 1"),
            std::string::npos);
  // The async host's event-loop probes live in the same registry.
  EXPECT_NE(text.find("# TYPE rsr_loop_iteration_seconds histogram"),
            std::string::npos);

  // The @stats session settles once the shard notices the close.
  EXPECT_TRUE(Eventually([&server] {
    return server.metrics_registry().CounterValue(
               "rsr_sync_sessions_total",
               {{"protocol", "@stats"}, {"outcome", "ok"}}) == 1;
  }));
  server.Stop();
}

TEST(HttpExporterTest, ServesMetricsAnd404s) {
  obs::MetricsRegistry registry;
  registry.GetCounter("demo_total", "demo")->Inc(7);
  obs::MetricsHttpServer http(
      [&registry] { return registry.RenderPrometheus(); });
  ASSERT_TRUE(http.Start(net::TcpListener::Listen("127.0.0.1", 0)));
  ASSERT_GT(http.port(), 0);

  const auto request = [&http](const std::string& head) {
    auto conn = net::TcpStream::Connect("127.0.0.1", http.port());
    EXPECT_NE(conn, nullptr);
    if (conn == nullptr) return std::string();
    EXPECT_TRUE(conn->Write(
        reinterpret_cast<const uint8_t*>(head.data()), head.size()));
    std::string response;
    uint8_t buf[4096];
    for (;;) {
      const ptrdiff_t n = conn->Read(buf, sizeof buf);
      if (n <= 0) break;
      response.append(reinterpret_cast<const char*>(buf),
                      static_cast<size_t>(n));
    }
    return response;
  };

  const std::string ok =
      request("GET /metrics HTTP/1.0\r\nUser-Agent: test\r\n\r\n");
  EXPECT_EQ(ok.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(ok.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(ok.find("demo_total 7"), std::string::npos);

  const std::string missing = request("GET /other HTTP/1.0\r\n\r\n");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u);

  // No health renderer wired: /healthz is just another unknown route.
  const std::string no_health = request("GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(no_health.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u);
  http.Stop();
}

TEST(HttpExporterTest, ServesHealthzWhenRendererWired) {
  obs::MetricsRegistry registry;
  obs::MetricsHttpServer http(
      [&registry] { return registry.RenderPrometheus(); },
      [] { return std::string("ok uptime_seconds=1.5 replica_seq=3 "
                              "dirty=0\n"); });
  ASSERT_TRUE(http.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  const auto request = [&http](const std::string& head) {
    auto conn = net::TcpStream::Connect("127.0.0.1", http.port());
    EXPECT_NE(conn, nullptr);
    if (conn == nullptr) return std::string();
    EXPECT_TRUE(conn->Write(
        reinterpret_cast<const uint8_t*>(head.data()), head.size()));
    std::string response;
    uint8_t buf[4096];
    for (;;) {
      const ptrdiff_t n = conn->Read(buf, sizeof buf);
      if (n <= 0) break;
      response.append(reinterpret_cast<const char*>(buf),
                      static_cast<size_t>(n));
    }
    return response;
  };

  const std::string health = request("GET /healthz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(health.rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
  EXPECT_NE(health.find("ok uptime_seconds=1.5 replica_seq=3 dirty=0"),
            std::string::npos);
  // The longer-path guard still applies.
  const std::string longer = request("GET /healthzzz HTTP/1.0\r\n\r\n");
  EXPECT_EQ(longer.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u);
  http.Stop();
}

TEST(TraceSpanTest, ThreadedSessionEmitsPhaseBreakdown) {
  obs::VectorTraceSink sink;
  const PointSet canonical = Canonical(32);
  SyncServerOptions options;
  options.context = Ctx();
  options.params = Params();
  options.trace_sink = &sink;
  SyncServer server(canonical, options);
  const SyncOutcome sync = PipeSync(&server, Canonical(16));
  ASSERT_TRUE(sync.result.success);

  const std::vector<std::string> lines = sink.lines();
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_EQ(line.rfind("{\"span\":\"sync-session\"", 0), 0u);
  EXPECT_NE(line.find("\"protocol\":\"full-transfer\""), std::string::npos);
  EXPECT_NE(line.find("\"outcome\":\"ok\""), std::string::npos);
  for (const char* phase : {"handshake", "rounds", "result"}) {
    EXPECT_NE(line.find("\"name\":\"" + std::string(phase) + "\""),
              std::string::npos)
        << line;
  }
  // Frames flowed both ways: the first (session-total) counts — the ones
  // before the per-phase array, where zeros are legitimate — are nonzero.
  const size_t in_at = line.find("\"frames_in\":");
  const size_t out_at = line.find("\"frames_out\":");
  ASSERT_NE(in_at, std::string::npos);
  ASSERT_NE(out_at, std::string::npos);
  EXPECT_NE(line[in_at + 12], '0') << line;
  EXPECT_NE(line[out_at + 13], '0') << line;
}

TEST(TraceSpanTest, AsyncSessionEmitsSpan) {
  obs::VectorTraceSink sink;
  const PointSet canonical = Canonical(32);
  AsyncSyncServerOptions options;
  options.context = Ctx();
  options.params = Params();
  options.shards = 1;
  options.trace_sink = &sink;
  AsyncSyncServer server(canonical, options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  const SyncClient client(client_options);
  auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  const SyncOutcome sync =
      client.Sync(stream.get(), "full-transfer", Canonical(16));
  ASSERT_TRUE(sync.result.success);
  ASSERT_TRUE(Eventually([&sink] { return !sink.lines().empty(); }));
  server.Stop();

  const std::string line = sink.lines()[0];
  EXPECT_EQ(line.rfind("{\"span\":\"sync-session\"", 0), 0u);
  EXPECT_NE(line.find("\"protocol\":\"full-transfer\""), std::string::npos);
  EXPECT_NE(line.find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"rounds\""), std::string::npos);
}

TEST(IdleTimeoutTest, ThreadedHostFailsSilentTcpClient) {
  const PointSet canonical = Canonical(16);
  SyncServerOptions options;
  options.context = Ctx();
  options.params = Params();
  options.worker_threads = 1;
  options.idle_timeout = std::chrono::milliseconds(100);
  SyncServer server(canonical, options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  // Connect and say nothing: the per-session read deadline must fail the
  // connection (the worker closes it; our read observes the EOF/reset).
  auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
  ASSERT_NE(stream, nullptr);
  uint8_t byte;
  EXPECT_LE(stream->Read(&byte, 1), 0);

  EXPECT_TRUE(Eventually([&server] {
    return server.metrics_registry().CounterValue(
               "rsr_sync_idle_timeouts_total") == 1;
  }));
  EXPECT_EQ(server.metrics().idle_timeouts, 1u);
  EXPECT_EQ(server.metrics().syncs_completed, 0u);
  server.Stop();
}

}  // namespace
}  // namespace server
}  // namespace rsr
