#include "util/bitio.h"

#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace rsr {
namespace {

TEST(BitWidthForUniverseTest, KnownValues) {
  EXPECT_EQ(BitWidthForUniverse(0), 0);
  EXPECT_EQ(BitWidthForUniverse(1), 0);
  EXPECT_EQ(BitWidthForUniverse(2), 1);
  EXPECT_EQ(BitWidthForUniverse(3), 2);
  EXPECT_EQ(BitWidthForUniverse(4), 2);
  EXPECT_EQ(BitWidthForUniverse(5), 3);
  EXPECT_EQ(BitWidthForUniverse(1024), 10);
  EXPECT_EQ(BitWidthForUniverse(1025), 11);
  EXPECT_EQ(BitWidthForUniverse(uint64_t{1} << 40), 40);
}

TEST(BitIoTest, SingleBits) {
  BitWriter w;
  const bool pattern[] = {true, false, true, true, false, false, true};
  for (bool b : pattern) w.WriteBit(b);
  EXPECT_EQ(w.bit_count(), 7u);

  BitReader r(w.bytes());
  for (bool expected : pattern) {
    bool b = false;
    ASSERT_TRUE(r.ReadBit(&b));
    EXPECT_EQ(b, expected);
  }
  bool dummy;
  // Only the zero-padding of the final partial byte remains.
  EXPECT_TRUE(r.ReadBit(&dummy));
  EXPECT_FALSE(dummy);
}

TEST(BitIoTest, ZeroWidthWriteIsNoop) {
  BitWriter w;
  w.WriteBits(0xffff, 0);
  EXPECT_EQ(w.bit_count(), 0u);
  EXPECT_TRUE(w.bytes().empty());
}

TEST(BitIoTest, FullWidthRoundTrip) {
  BitWriter w;
  const uint64_t v = 0xdeadbeefcafebabeULL;
  w.WriteBits(v, 64);
  BitReader r(w.bytes());
  uint64_t out = 0;
  ASSERT_TRUE(r.ReadBits(64, &out));
  EXPECT_EQ(out, v);
}

TEST(BitIoTest, MaskingOfHighBits) {
  BitWriter w;
  w.WriteBits(0xff, 4);  // only low 4 bits should be kept
  BitReader r(w.bytes());
  uint64_t out = 0;
  ASSERT_TRUE(r.ReadBits(4, &out));
  EXPECT_EQ(out, 0xfu);
  ASSERT_TRUE(r.ReadBits(4, &out));
  EXPECT_EQ(out, 0u);  // padding
}

TEST(BitIoTest, UnderrunReturnsFalse) {
  BitWriter w;
  w.WriteBits(5, 3);
  BitReader r(w.bytes());
  uint64_t out = 0;
  EXPECT_TRUE(r.ReadBits(8, &out));   // one padded byte exists
  EXPECT_FALSE(r.ReadBits(1, &out));  // now empty
}

TEST(BitIoTest, AlignToByte) {
  BitWriter w;
  w.WriteBits(1, 3);
  w.AlignToByte();
  EXPECT_EQ(w.bit_count(), 8u);
  w.WriteBits(0xab, 8);
  BitReader r(w.bytes());
  uint64_t out = 0;
  ASSERT_TRUE(r.ReadBits(3, &out));
  r.AlignToByte();
  ASSERT_TRUE(r.ReadBits(8, &out));
  EXPECT_EQ(out, 0xabu);
}

TEST(BitIoTest, VarintKnownValues) {
  BitWriter w;
  w.WriteVarint(0);
  w.WriteVarint(127);
  w.WriteVarint(128);
  w.WriteVarint(300);
  w.WriteVarint(~uint64_t{0});
  BitReader r(w.bytes());
  uint64_t out = 0;
  ASSERT_TRUE(r.ReadVarint(&out));
  EXPECT_EQ(out, 0u);
  ASSERT_TRUE(r.ReadVarint(&out));
  EXPECT_EQ(out, 127u);
  ASSERT_TRUE(r.ReadVarint(&out));
  EXPECT_EQ(out, 128u);
  ASSERT_TRUE(r.ReadVarint(&out));
  EXPECT_EQ(out, 300u);
  ASSERT_TRUE(r.ReadVarint(&out));
  EXPECT_EQ(out, ~uint64_t{0});
}

TEST(BitIoTest, SignedVarintRoundTrip) {
  BitWriter w;
  const int64_t values[] = {0, 1, -1, 63, -64, 1234567, -7654321,
                            INT64_MAX, INT64_MIN};
  for (int64_t v : values) w.WriteSignedVarint(v);
  BitReader r(w.bytes());
  for (int64_t expected : values) {
    int64_t out = 0;
    ASSERT_TRUE(r.ReadSignedVarint(&out));
    EXPECT_EQ(out, expected);
  }
}

// Property sweep: random sequences of mixed-width writes round-trip exactly.
class BitIoFuzzSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BitIoFuzzSweep, MixedWidthRoundTrip) {
  Rng rng(GetParam());
  struct Item {
    uint64_t value;
    int bits;
  };
  std::vector<Item> items;
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    const int bits = static_cast<int>(rng.Below(65));
    uint64_t value = rng.Next64();
    if (bits < 64) value &= (bits == 0) ? 0 : ((~uint64_t{0}) >> (64 - bits));
    items.push_back({value, bits});
    w.WriteBits(value, bits);
  }
  BitReader r(w.bytes());
  for (const Item& item : items) {
    uint64_t out = 0;
    ASSERT_TRUE(r.ReadBits(item.bits, &out));
    ASSERT_EQ(out, item.value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitIoFuzzSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace rsr
