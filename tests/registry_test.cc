#include "recon/registry.h"

#include <gtest/gtest.h>

#include "recon/evaluate.h"
#include "recon/quadtree_recon.h"
#include "workload/scenario.h"

namespace rsr {
namespace recon {
namespace {

ProtocolContext Ctx() {
  ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 14, 2);
  ctx.seed = 21;
  return ctx;
}

TEST(RegistryTest, BuiltinsArePresent) {
  const ProtocolRegistry& registry = ProtocolRegistry::Global();
  for (const char* name :
       {"full-transfer", "exact-iblt", "quadtree", "quadtree-adaptive",
        "single-grid", "mlsh-riblt", "riblt-oneshot", "gap-lattice"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
    EXPECT_FALSE(registry.Describe(name).empty()) << name;
  }
  EXPECT_GE(registry.Names().size(), 8u);
}

TEST(RegistryTest, CreateInstantiatesTheRequestedProtocol) {
  ProtocolParams params;
  for (const std::string& name : ProtocolRegistry::Global().Names()) {
    const auto protocol = MakeReconciler(name, Ctx(), params);
    ASSERT_NE(protocol, nullptr) << name;
    if (name == "single-grid") {
      // The level is baked into the display name.
      EXPECT_EQ(protocol->Name(),
                "single-grid-L" + std::to_string(params.single_grid_level));
    } else {
      EXPECT_EQ(protocol->Name(), name);
    }
  }
}

TEST(RegistryTest, UnknownNameYieldsNull) {
  ProtocolParams params;
  EXPECT_EQ(MakeReconciler("no-such-protocol", Ctx(), params), nullptr);
  EXPECT_FALSE(ProtocolRegistry::Global().Contains("no-such-protocol"));
  EXPECT_EQ(ProtocolRegistry::Global().Describe("no-such-protocol"), "");
}

TEST(RegistryTest, SharedKOverridesFamilyBudgets) {
  ProtocolParams params;
  params.k = 48;
  const ProtocolParams resolved = params.Resolved();
  EXPECT_EQ(resolved.quadtree.k, 48u);
  EXPECT_EQ(resolved.mlsh.k, 48u);
  EXPECT_EQ(resolved.riblt.k, 48u);
  // k == 0 keeps the per-family defaults.
  const ProtocolParams untouched = ProtocolParams{}.Resolved();
  EXPECT_EQ(untouched.quadtree.k, QuadtreeParams{}.k);
}

TEST(RegistryTest, ListProtocolsIsSortedAndMatchesContains) {
  const ProtocolRegistry& registry = ProtocolRegistry::Global();
  const std::vector<std::string> names = registry.ListProtocols();
  ASSERT_GE(names.size(), 8u);
  for (size_t i = 1; i < names.size(); ++i) {
    EXPECT_LT(names[i - 1], names[i]);  // strictly sorted: no duplicates
  }
  for (const std::string& name : names) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
  EXPECT_EQ(names, registry.Names());  // legacy alias agrees
}

TEST(RegistryTest, DuplicateRegistrationIsRejected) {
  ProtocolRegistry registry;
  auto factory = [](const ProtocolContext& ctx, const ProtocolParams& p) {
    return std::unique_ptr<Reconciler>(
        std::make_unique<QuadtreeReconciler>(ctx, p.quadtree));
  };
  EXPECT_TRUE(registry.Register("qt", "first", factory));
  EXPECT_FALSE(registry.Register("qt", "second", factory));
  EXPECT_EQ(registry.Describe("qt"), "first");
}

TEST(RegistryTest, EvaluateByNameRunsTheProtocol) {
  const workload::Scenario scenario =
      workload::StandardScenario(96, 2, 1 << 14, 4, 1.0);
  const workload::ReplicaPair pair = scenario.Materialize();
  ProtocolContext ctx;
  ctx.universe = scenario.universe;
  ctx.seed = 9;
  ProtocolParams params;
  params.k = 4;
  EvaluateOptions options;
  options.measure_quality = false;

  const Evaluation eval = EvaluateProtocol("quadtree", ctx, params,
                                           pair.alice, pair.bob, options);
  EXPECT_TRUE(eval.success);
  EXPECT_EQ(eval.protocol, "quadtree");
  EXPECT_GT(eval.comm_bits, 0u);
  EXPECT_EQ(eval.rounds, 1u);

  const Evaluation unknown = EvaluateProtocol(
      "no-such-protocol", ctx, params, pair.alice, pair.bob, options);
  EXPECT_FALSE(unknown.success);
  EXPECT_EQ(unknown.protocol, "no-such-protocol");
  EXPECT_EQ(unknown.comm_bits, 0u);
}

}  // namespace
}  // namespace recon
}  // namespace rsr
