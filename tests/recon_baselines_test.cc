#include <algorithm>

#include <gtest/gtest.h>

#include "geometry/emd.h"
#include "recon/exact_recon.h"
#include "recon/full_transfer.h"
#include "recon/single_grid.h"
#include "workload/generator.h"

namespace rsr {
namespace recon {
namespace {

using workload::CloudSpec;
using workload::MakeReplicaPair;
using workload::NoiseKind;
using workload::PerturbationSpec;
using workload::ReplicaPair;

ProtocolContext Context(int64_t delta, int d, uint64_t seed = 7) {
  ProtocolContext ctx;
  ctx.universe = MakeUniverse(delta, d);
  ctx.seed = seed;
  return ctx;
}

ReplicaPair MakeInstance(int64_t delta, int d, size_t n, size_t k,
                         double noise, uint64_t seed = 3) {
  CloudSpec cloud;
  cloud.universe = MakeUniverse(delta, d);
  cloud.n = n;
  PerturbationSpec spec;
  spec.noise = noise > 0 ? NoiseKind::kGaussian : NoiseKind::kNone;
  spec.noise_scale = noise;
  spec.outliers = k;
  return MakeReplicaPair(cloud, spec, seed);
}

PointSet Sorted(PointSet points) {
  std::sort(points.begin(), points.end(), PointLess);
  return points;
}

TEST(FullTransferTest, BobEndsWithAlicesSet) {
  const ReplicaPair pair = MakeInstance(1 << 12, 2, 200, 10, 3.0);
  const ProtocolContext ctx = Context(1 << 12, 2);
  FullTransferReconciler protocol(ctx);
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(Sorted(result.bob_final), Sorted(pair.alice));
}

TEST(FullTransferTest, CommunicationIsExactlyNPoints) {
  const size_t n = 100;
  const ReplicaPair pair = MakeInstance(1 << 10, 3, n, 0, 0.0);
  const ProtocolContext ctx = Context(1 << 10, 3);
  FullTransferReconciler protocol(ctx);
  transport::Channel channel;
  (void)protocol.Run(pair.alice, pair.bob, &channel);
  // One varint byte for n=100, then n points at 3 coords x 10 bits each.
  const size_t expected = 8 + n * 3 * 10;
  EXPECT_EQ(channel.stats().total_bits, expected);
  EXPECT_EQ(channel.stats().rounds, 1u);
}

TEST(ExactReconTest, RecoversExactDifference) {
  const ReplicaPair pair = MakeInstance(1 << 14, 2, 300, 12, 0.0, 5);
  const ProtocolContext ctx = Context(1 << 14, 2, 6);
  ExactReconciler protocol(ctx, {});
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  // Exact reconciliation: Bob ends with precisely Alice's multiset.
  EXPECT_EQ(Sorted(result.bob_final), Sorted(pair.alice));
}

TEST(ExactReconTest, IdenticalSetsAreCheap) {
  const ReplicaPair pair = MakeInstance(1 << 14, 2, 400, 0, 0.0, 7);
  const ProtocolContext ctx = Context(1 << 14, 2, 8);
  ExactReconciler protocol(ctx, {});
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(Sorted(result.bob_final), Sorted(pair.alice));
  // Strata estimator + minimal IBLT only; far less than full transfer
  // (400 points x 28 bits = 11200 bits for the data alone).
  EXPECT_LT(channel.stats().total_bits, 90000u);
}

TEST(ExactReconTest, HandlesDuplicatePoints) {
  // Multisets with duplicates exercise the occurrence-indexed keys.
  PointSet alice, bob;
  for (int i = 0; i < 50; ++i) {
    alice.push_back({7, 7});
    bob.push_back({7, 7});
  }
  alice.push_back({1, 2});
  alice.push_back({1, 2});  // Alice has two extra copies
  bob.push_back({9, 9});
  bob.push_back({9, 9});    // Bob has two extra copies
  const ProtocolContext ctx = Context(1 << 8, 2, 9);
  ExactReconciler protocol(ctx, {});
  transport::Channel channel;
  const ReconResult result = protocol.Run(alice, bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(Sorted(result.bob_final), Sorted(alice));
}

TEST(ExactReconTest, NoiseMakesItExpensive) {
  // The paper's core motivation: with per-point noise the exact difference
  // is ~2n and exact reconciliation costs more than the robust protocol by
  // a large factor (here: just assert it exceeds a big chunk of full
  // transfer cost).
  const size_t n = 300;
  const ReplicaPair pair = MakeInstance(1 << 14, 2, n, 0, 2.0, 10);
  const ProtocolContext ctx = Context(1 << 14, 2, 11);
  ExactReconciler protocol(ctx, {});
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(Sorted(result.bob_final), Sorted(pair.alice));
  const size_t full_transfer_bits = n * 2 * 14;
  EXPECT_GT(channel.stats().total_bits, full_transfer_bits);
}

TEST(ExactReconTest, UnequalSizesSupported) {
  PointSet alice, bob;
  for (int i = 0; i < 40; ++i) alice.push_back({i, i});
  for (int i = 0; i < 30; ++i) bob.push_back({i, i});
  const ProtocolContext ctx = Context(1 << 8, 2, 12);
  ExactReconciler protocol(ctx, {});
  transport::Channel channel;
  const ReconResult result = protocol.Run(alice, bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(Sorted(result.bob_final), Sorted(alice));
}

TEST(SingleGridTest, FineLevelFailsUnderNoise) {
  const ReplicaPair pair = MakeInstance(1 << 14, 2, 256, 4, 4.0, 13);
  const ProtocolContext ctx = Context(1 << 14, 2, 14);
  QuadtreeParams params;
  params.k = 4;
  SingleGridReconciler protocol(ctx, params, /*level=*/0);
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  // Nearly every point moved, so the level-0 histogram difference is ~2n,
  // far beyond a k=4-sized IBLT.
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.bob_final.size(), pair.bob.size());  // unchanged
}

TEST(SingleGridTest, CoarseLevelSucceedsUnderNoise) {
  const ReplicaPair pair = MakeInstance(1 << 14, 2, 256, 4, 4.0, 15);
  const ProtocolContext ctx = Context(1 << 14, 2, 16);
  QuadtreeParams params;
  params.k = 4;
  // Side 2^9 = 512 vastly exceeds the noise scale 4: nearly all noisy pairs
  // land in the same cell and cancel.
  SingleGridReconciler protocol(ctx, params, /*level=*/9);
  transport::Channel channel;
  const ReconResult result = protocol.Run(pair.alice, pair.bob, &channel);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.bob_final.size(), 256u);
  const double before = ExactEmd(pair.alice, pair.bob, Metric::kL2);
  const double after = ExactEmd(pair.alice, result.bob_final, Metric::kL2);
  EXPECT_LT(after, before);  // outliers reclaimed, coarse error added
}

TEST(SingleGridTest, MatchesQuadtreeAtForcedLevel) {
  // SingleGrid at level ℓ sends exactly one of the quadtree's per-level
  // messages; its communication must be ~ 1/(L+1) of the one-shot total.
  const ReplicaPair pair = MakeInstance(1 << 12, 2, 128, 4, 1.0, 17);
  const ProtocolContext ctx = Context(1 << 12, 2, 18);
  QuadtreeParams params;
  params.k = 4;
  transport::Channel channel;
  SingleGridReconciler(ctx, params, 6).Run(pair.alice, pair.bob, &channel);
  const size_t single_bits = channel.stats().total_bits;
  EXPECT_GT(single_bits, 0u);
  EXPECT_LT(single_bits, 40000u);
}

}  // namespace
}  // namespace recon
}  // namespace rsr
