#include "riblt/riblt.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "geometry/metric.h"
#include "util/random.h"

namespace rsr {
namespace {

RibltConfig TestConfig(size_t cells = 120, uint64_t seed = 1) {
  RibltConfig config;
  config.cells = cells;
  config.q = 3;
  config.universe = MakeUniverse(1 << 10, 2);
  config.max_entries = 1 << 12;
  config.seed = seed;
  return config;
}

TEST(RibltConfigTest, Widths) {
  const RibltConfig config = TestConfig();
  EXPECT_EQ(config.RoundedCells(), 120u);
  // key sums: 64 + log2(4097) + sign = 64 + 13 + 1.
  EXPECT_EQ(config.KeySumBits(), 78);
  // coords: log2(1024) + log2(4097) + sign = 10 + 13 + 1.
  EXPECT_EQ(config.CoordSumBits(), 24);
  EXPECT_EQ(config.SerializedBits(),
            120u * (16 + 2 * 78 + 2 * 24));
}

TEST(RibltTest, EmptyDecodes) {
  Riblt table(TestConfig());
  Rng rng(1);
  const RibltDecodeResult result = table.Decode(&rng);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.entries.empty());
}

TEST(RibltTest, SingleEntryRoundTrip) {
  Riblt table(TestConfig());
  table.Insert(42, {100, 200});
  Rng rng(2);
  const RibltDecodeResult result = table.Decode(&rng);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].key, 42u);
  EXPECT_EQ(result.entries[0].sign, 1);
  ASSERT_EQ(result.entries[0].values.size(), 1u);
  EXPECT_EQ(result.entries[0].values[0], Point({100, 200}));
}

TEST(RibltTest, ErasedEntryHasNegativeSign) {
  Riblt table(TestConfig());
  table.Erase(7, {5, 6});
  Rng rng(3);
  const RibltDecodeResult result = table.Decode(&rng);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].sign, -1);
  EXPECT_EQ(result.entries[0].values[0], Point({5, 6}));
}

TEST(RibltTest, DuplicateKeysWithEqualValuesExtractExactCopies) {
  Riblt table(TestConfig());
  table.Insert(9, {50, 60});
  table.Insert(9, {50, 60});
  table.Insert(9, {50, 60});
  Rng rng(4);
  const RibltDecodeResult result = table.Decode(&rng);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.entries.size(), 1u);
  EXPECT_EQ(result.entries[0].key, 9u);
  ASSERT_EQ(result.entries[0].values.size(), 3u);
  for (const Point& v : result.entries[0].values) {
    EXPECT_EQ(v, Point({50, 60}));
  }
}

TEST(RibltTest, DuplicateKeysWithDifferentValuesAverage) {
  Riblt table(TestConfig());
  table.Insert(11, {10, 100});
  table.Insert(11, {20, 100});
  Rng rng(5);
  const RibltDecodeResult result = table.Decode(&rng);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.entries.size(), 1u);
  ASSERT_EQ(result.entries[0].values.size(), 2u);
  for (const Point& v : result.entries[0].values) {
    EXPECT_EQ(v[0], 15);   // exact average, no rounding needed
    EXPECT_EQ(v[1], 100);
  }
}

TEST(RibltTest, AveragingWithRoundingStaysNearMean) {
  // Values 0 and 1 average to 0.5: each extracted copy must round to 0 or 1.
  Riblt table(TestConfig());
  table.Insert(13, {0, 7});
  table.Insert(13, {1, 7});
  Rng rng(6);
  const RibltDecodeResult result = table.Decode(&rng);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.entries.size(), 1u);
  for (const Point& v : result.entries[0].values) {
    EXPECT_TRUE(v[0] == 0 || v[0] == 1);
    EXPECT_EQ(v[1], 7);
  }
}

TEST(RibltTest, RoundingFrequencyMatchesFraction) {
  // Average 1/4 should round up ~25% of the time across many decodes.
  int ups = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    Riblt table(TestConfig(120, 7));
    table.Insert(17, {1, 0});
    table.Insert(17, {0, 0});
    table.Insert(17, {0, 0});
    table.Insert(17, {0, 0});
    Rng rng(static_cast<uint64_t>(t) + 999);
    const RibltDecodeResult result = table.Decode(&rng);
    ASSERT_TRUE(result.success);
    ups += result.entries[0].values[0][0];  // first copy's first coord
  }
  EXPECT_NEAR(static_cast<double>(ups) / trials, 0.25, 0.03);
}

TEST(RibltTest, MatchedNoisyPairLeavesValueResidueOnly) {
  // Same key, different values, opposite signs: structurally cancels.
  Riblt table(TestConfig());
  table.Insert(21, {100, 100});
  table.Erase(21, {101, 99});
  EXPECT_TRUE(table.IsStructurallyEmpty());
  Rng rng(8);
  const RibltDecodeResult result = table.Decode(&rng);
  EXPECT_TRUE(result.success);
  EXPECT_TRUE(result.entries.empty());
}

TEST(RibltTest, ErrorPropagationContaminatesButDecodes) {
  // A matched noisy pair shares a cell structure with genuinely differing
  // entries; peeling still succeeds and the residue perturbs at most the
  // values, never the keys.
  Riblt table(TestConfig(120, 9));
  Rng data_rng(9);
  std::map<uint64_t, Point> alice_only;
  for (int i = 0; i < 10; ++i) {
    const uint64_t key = data_rng.Next64();
    const Point p = {data_rng.Uniform(0, 1023), data_rng.Uniform(0, 1023)};
    alice_only[key] = p;
    table.Insert(key, p);
  }
  // Ten matched noisy pairs (same keys both sides, values off by one).
  for (int i = 0; i < 10; ++i) {
    const uint64_t key = data_rng.Next64();
    const Point p = {data_rng.Uniform(1, 1022), data_rng.Uniform(1, 1022)};
    table.Insert(key, p);
    table.Erase(key, {p[0] + 1, p[1] - 1});
  }
  Rng rng(10);
  const RibltDecodeResult result = table.Decode(&rng);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.entries.size(), alice_only.size());
  int64_t total_error = 0;
  for (const RibltEntry& e : result.entries) {
    ASSERT_TRUE(alice_only.count(e.key));
    ASSERT_EQ(e.values.size(), 1u);
    total_error += DistanceL1(e.values[0], alice_only[e.key]);
  }
  // Total residue injected is 10 pairs x L1 error 2 = 20; the decoded
  // values can't accumulate more error than what was injected times a
  // small propagation factor.
  EXPECT_LE(total_error, 200);
}

TEST(RibltTest, SubtractEquivalentToInsertErase) {
  const RibltConfig config = TestConfig(120, 11);
  Riblt direct(config);
  direct.Insert(1, {10, 10});
  direct.Erase(2, {20, 20});

  Riblt a(config), b(config);
  a.Insert(1, {10, 10});
  b.Insert(2, {20, 20});
  a.Subtract(b);

  Rng rng1(11), rng2(11);
  const RibltDecodeResult r1 = direct.Decode(&rng1);
  const RibltDecodeResult r2 = a.Decode(&rng2);
  ASSERT_TRUE(r1.success);
  ASSERT_TRUE(r2.success);
  ASSERT_EQ(r1.entries.size(), 2u);
  ASSERT_EQ(r2.entries.size(), 2u);
}

TEST(RibltTest, OverloadedFailsCleanly) {
  Riblt table(TestConfig(30, 12));
  Rng data_rng(12);
  for (int i = 0; i < 400; ++i) {
    table.Insert(data_rng.Next64(),
                 {data_rng.Uniform(0, 1023), data_rng.Uniform(0, 1023)});
  }
  Rng rng(13);
  EXPECT_FALSE(table.Decode(&rng).success);
}

TEST(RibltTest, MaxEntriesAbortsEarly) {
  Riblt table(TestConfig(300, 13));
  Rng data_rng(14);
  for (int i = 0; i < 50; ++i) {
    table.Insert(data_rng.Next64(),
                 {data_rng.Uniform(0, 1023), data_rng.Uniform(0, 1023)});
  }
  Rng rng(15);
  EXPECT_TRUE(table.Decode(&rng).success);
  Rng rng2(15);
  EXPECT_FALSE(table.Decode(&rng2, /*max_entries=*/10).success);
}

TEST(RibltTest, SerializeRoundTrip) {
  const RibltConfig config = TestConfig(90, 16);
  Riblt table(config);
  Rng data_rng(16);
  for (int i = 0; i < 20; ++i) {
    table.Insert(data_rng.Next64(),
                 {data_rng.Uniform(0, 1023), data_rng.Uniform(0, 1023)});
  }
  table.Erase(777, {3, 4});

  BitWriter w;
  table.Serialize(&w);
  EXPECT_EQ(w.bit_count(), config.SerializedBits());
  BitReader r(w.bytes());
  std::optional<Riblt> restored = Riblt::Deserialize(config, &r);
  ASSERT_TRUE(restored.has_value());

  Rng rng1(17), rng2(17);
  const RibltDecodeResult d1 = table.Decode(&rng1);
  const RibltDecodeResult d2 = restored->Decode(&rng2);
  ASSERT_TRUE(d1.success);
  ASSERT_TRUE(d2.success);
  ASSERT_EQ(d1.entries.size(), d2.entries.size());
  for (size_t i = 0; i < d1.entries.size(); ++i) {
    EXPECT_EQ(d1.entries[i].key, d2.entries[i].key);
    EXPECT_EQ(d1.entries[i].sign, d2.entries[i].sign);
    EXPECT_EQ(d1.entries[i].values, d2.entries[i].values);
  }
}

TEST(RibltTest, DeserializeUnderrunFails) {
  const RibltConfig config = TestConfig(90, 17);
  BitWriter w;
  w.WriteBits(0, 50);
  BitReader r(w.bytes());
  EXPECT_FALSE(Riblt::Deserialize(config, &r).has_value());
}

// Reconciliation-shaped sweep: two parties, varying overlap; the subtracted
// RIBLT must recover exactly the differing pairs' keys.
class RibltReconSweep : public ::testing::TestWithParam<int> {};

TEST_P(RibltReconSweep, SymmetricDifferenceByKeys) {
  const int diff = GetParam();
  const RibltConfig config = TestConfig(
      static_cast<size_t>(3 * 2 * diff * 4 + 60), 18);
  Riblt alice(config), bob(config);
  Rng rng(20 + static_cast<uint64_t>(diff));
  for (int i = 0; i < 300; ++i) {
    const uint64_t key = rng.Next64();
    const Point p = {rng.Uniform(0, 1023), rng.Uniform(0, 1023)};
    alice.Insert(key, p);
    bob.Insert(key, p);
  }
  std::map<uint64_t, int> expected;  // key -> sign
  for (int i = 0; i < diff; ++i) {
    const uint64_t ka = rng.Next64();
    const uint64_t kb = rng.Next64();
    alice.Insert(ka, {rng.Uniform(0, 1023), rng.Uniform(0, 1023)});
    bob.Insert(kb, {rng.Uniform(0, 1023), rng.Uniform(0, 1023)});
    expected[ka] = 1;
    expected[kb] = -1;
  }
  alice.Subtract(bob);
  Rng round_rng(21);
  const RibltDecodeResult result = alice.Decode(&round_rng);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.entries.size(), expected.size());
  for (const RibltEntry& e : result.entries) {
    ASSERT_TRUE(expected.count(e.key));
    EXPECT_EQ(e.sign, expected[e.key]);
  }
}

INSTANTIATE_TEST_SUITE_P(DiffSizes, RibltReconSweep,
                         ::testing::Values(1, 4, 16, 48));

}  // namespace
}  // namespace rsr
