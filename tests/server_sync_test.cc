// Serving-layer integration tests: the sync server + client over both
// transports (pipe pair and loopback TCP), asserting that a served sync's
// result — including the reconciled point set — is bit-for-bit identical
// to the in-process two-party driver on the same inputs, that the
// handshake rejects unknown protocols with a self-describing error, and
// that 8 concurrent clients with mixed protocols are all served correctly.

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "net/pipe_stream.h"
#include "net/tcp.h"
#include "recon/registry.h"
#include "server/handshake.h"
#include "server/sync_client.h"
#include "server/sync_server.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace rsr {
namespace server {
namespace {

using recon::ProtocolContext;
using recon::ProtocolParams;
using recon::ReconResult;
using recon::SessionError;

const char* kAllProtocols[] = {
    "exact-iblt",   "full-transfer", "gap-lattice",   "mlsh-riblt",
    "quadtree",     "quadtree-adaptive", "riblt-oneshot", "single-grid",
};

ProtocolContext Ctx() {
  ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 14, 2);
  ctx.seed = 77;
  return ctx;
}

ProtocolParams Params() {
  ProtocolParams params;
  params.k = 8;
  return params;
}

/// The server's canonical set: a clustered cloud in Ctx()'s universe.
PointSet Canonical(size_t n) {
  workload::CloudSpec spec;
  spec.universe = Ctx().universe;
  spec.n = n;
  spec.shape = workload::CloudShape::kClusters;
  Rng rng(4242);
  return workload::GenerateCloud(spec, &rng);
}

/// A drifted replica of `base`: per-point Gaussian noise plus `outliers`
/// points replaced by fresh uniform ones. Same size as the base, so the
/// equal-size contract of the EMD-model protocols holds.
PointSet DriftedReplica(const PointSet& base, uint64_t seed,
                        size_t outliers = 4, double noise = 1.0) {
  const Universe universe = Ctx().universe;
  Rng rng(seed);
  PointSet replica;
  replica.reserve(base.size());
  for (const Point& p : base) {
    replica.push_back(workload::PerturbPoint(
        p, universe, workload::NoiseKind::kGaussian, noise, &rng));
  }
  for (size_t i = 0; i < outliers && !replica.empty(); ++i) {
    Point fresh(universe.d);
    for (int j = 0; j < universe.d; ++j) {
      fresh[j] = static_cast<int64_t>(rng.Below(universe.delta));
    }
    replica[rng.Below(replica.size())] = std::move(fresh);
  }
  return replica;
}

/// The reference: the same sync through recon::DrivePair (via Run).
ReconResult InProcessResult(const std::string& protocol,
                            const PointSet& client_points,
                            const PointSet& canonical) {
  const auto reconciler =
      recon::MakeReconciler(protocol, Ctx(), Params());
  transport::Channel channel;
  return reconciler->Run(client_points, canonical, &channel);
}

void ExpectMatchesInProcess(const std::string& protocol,
                            const SyncOutcome& outcome,
                            const ReconResult& expected) {
  EXPECT_TRUE(outcome.handshake_ok) << protocol;
  EXPECT_EQ(outcome.result.success, expected.success) << protocol;
  EXPECT_EQ(outcome.result.error, expected.error) << protocol;
  EXPECT_EQ(outcome.result.chosen_level, expected.chosen_level) << protocol;
  EXPECT_EQ(outcome.result.decoded_entries, expected.decoded_entries)
      << protocol;
  EXPECT_EQ(outcome.result.attempts, expected.attempts) << protocol;
  EXPECT_EQ(outcome.result.transmitted, expected.transmitted) << protocol;
  if (expected.success) {
    // The recovered set must match the driver's bit for bit, order
    // included: both sides ran the identical deterministic computation.
    EXPECT_EQ(outcome.result.bob_final, expected.bob_final) << protocol;
  }
}

TEST(SyncServerPipeTest, EveryProtocolMatchesInProcessDriver) {
  const PointSet canonical = Canonical(128);
  SyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.params = Params();
  SyncServer server(canonical, server_options);

  SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  const SyncClient client(client_options);

  uint64_t seed = 1000;
  for (const char* protocol : kAllProtocols) {
    const PointSet client_points = DriftedReplica(canonical, ++seed);
    auto [server_end, client_end] = net::PipeStream::CreatePair();
    std::thread server_thread(
        [&server, stream = std::move(server_end)] {
          server.ServeConnection(stream.get());
        });
    const SyncOutcome outcome =
        client.Sync(client_end.get(), protocol, client_points);
    server_thread.join();
    ExpectMatchesInProcess(protocol, outcome,
                           InProcessResult(protocol, client_points, canonical));
    EXPECT_GT(outcome.bytes_sent, 0u) << protocol;
    EXPECT_GT(outcome.bytes_received, 0u) << protocol;
  }

  const SyncServerMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.connections_accepted, std::size(kAllProtocols));
  EXPECT_EQ(metrics.active_sessions, 0u);
  EXPECT_EQ(metrics.syncs_completed + metrics.syncs_failed,
            std::size(kAllProtocols));
  EXPECT_GT(metrics.bytes_in, 0u);
  EXPECT_GT(metrics.bytes_out, 0u);
}

TEST(SyncServerTcpTest, EightConcurrentClientsWithMixedProtocols) {
  const PointSet canonical = Canonical(128);
  SyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.params = Params();
  server_options.worker_threads = 4;
  SyncServer server(canonical, server_options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));
  ASSERT_GT(server.port(), 0);

  constexpr size_t kClients = 8;
  std::vector<PointSet> client_points(kClients);
  std::vector<SyncOutcome> outcomes(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    client_points[i] = DriftedReplica(canonical, 9000 + i);
  }

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      SyncClientOptions options;
      options.context = Ctx();
      options.params = Params();
      const SyncClient client(options);
      auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
      ASSERT_NE(stream, nullptr);
      outcomes[i] = client.Sync(stream.get(), kAllProtocols[i],
                                client_points[i]);
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  size_t expected_successes = 0;
  for (size_t i = 0; i < kClients; ++i) {
    const ReconResult expected =
        InProcessResult(kAllProtocols[i], client_points[i], canonical);
    ExpectMatchesInProcess(kAllProtocols[i], outcomes[i], expected);
    if (expected.success) ++expected_successes;
  }

  const SyncServerMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.connections_accepted, kClients);
  EXPECT_EQ(metrics.active_sessions, 0u);
  EXPECT_EQ(metrics.syncs_completed, expected_successes);
  EXPECT_EQ(metrics.syncs_completed + metrics.syncs_failed, kClients);
  EXPECT_EQ(metrics.per_protocol.size(), std::size(kAllProtocols));
  for (const auto& [name, stats] : metrics.per_protocol) {
    EXPECT_EQ(stats.syncs + stats.failures, 1u) << name;
    EXPECT_GT(stats.bytes_in, 0u) << name;
    EXPECT_GT(stats.bytes_out, 0u) << name;
    EXPECT_GE(stats.wall_seconds, 0.0) << name;
  }
}

TEST(SyncServerTcpTest, StopUnblocksSilentClients) {
  SyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.worker_threads = 2;
  SyncServer server(Canonical(16), server_options);
  ASSERT_TRUE(server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  // Three clients connect and then never speak: two pin the workers in
  // their handshake read, one sits in the queue. Stop() must close all of
  // them and return rather than wait forever.
  std::vector<std::unique_ptr<net::TcpStream>> silent;
  for (int i = 0; i < 3; ++i) {
    auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
    ASSERT_NE(stream, nullptr);
    silent.push_back(std::move(stream));
  }
  // Wait until the accept thread has seen them (bounded poll).
  for (int spin = 0; spin < 200; ++spin) {
    if (server.metrics().connections_accepted == 3) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();  // would hang before streams were closed on shutdown

  const SyncServerMetrics metrics = server.metrics();
  EXPECT_EQ(metrics.active_sessions, 0u);
  EXPECT_EQ(metrics.syncs_completed, 0u);
}

TEST(SyncServerHandshakeTest, UnknownProtocolIsRejectedWithProtocolList) {
  // Give the server a registry with a single protocol, so a registry-valid
  // client request is still unknown server-side.
  recon::ProtocolRegistry restricted;
  restricted.Register("full-transfer", "only offering",
                      [](const ProtocolContext& ctx, const ProtocolParams&) {
                        return recon::ProtocolRegistry::Global().Create(
                            "full-transfer", ctx, ProtocolParams{});
                      });

  const PointSet canonical = Canonical(32);
  SyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.registry = &restricted;
  SyncServer server(canonical, server_options);

  auto [server_end, client_end] = net::PipeStream::CreatePair();
  std::thread server_thread([&server, stream = std::move(server_end)] {
    server.ServeConnection(stream.get());
  });

  SyncClientOptions options;
  options.context = Ctx();
  const SyncClient client(options);
  const SyncOutcome outcome =
      client.Sync(client_end.get(), "quadtree", Canonical(32));
  server_thread.join();

  EXPECT_FALSE(outcome.handshake_ok);
  EXPECT_FALSE(outcome.result.success);
  EXPECT_EQ(outcome.result.error, SessionError::kProtocolRejected);
  EXPECT_NE(outcome.reject_reason.find("unknown protocol"), std::string::npos);
  EXPECT_EQ(outcome.server_protocols,
            std::vector<std::string>{"full-transfer"});
  EXPECT_EQ(server.metrics().handshakes_rejected, 1u);
  EXPECT_EQ(server.metrics().active_sessions, 0u);
}

TEST(SyncServerHandshakeTest, UnknownLocalProtocolFailsBeforeAnyTraffic) {
  SyncClientOptions options;
  options.context = Ctx();
  const SyncClient client(options);
  auto [server_end, client_end] = net::PipeStream::CreatePair();
  const SyncOutcome outcome =
      client.Sync(client_end.get(), "no-such-protocol", PointSet{});
  EXPECT_FALSE(outcome.handshake_ok);
  EXPECT_EQ(outcome.result.error, SessionError::kProtocolRejected);
  EXPECT_EQ(outcome.bytes_sent, 0u);
}

TEST(SyncServerHandshakeTest, PeerVanishingMidHandshakeIsTransportClosed) {
  SyncClientOptions options;
  options.context = Ctx();
  const SyncClient client(options);
  auto [server_end, client_end] = net::PipeStream::CreatePair();
  server_end->Close();  // server hangs up before answering
  const SyncOutcome outcome =
      client.Sync(client_end.get(), "full-transfer", Canonical(16));
  EXPECT_FALSE(outcome.handshake_ok);
  EXPECT_FALSE(outcome.result.success);
  EXPECT_EQ(outcome.result.error, SessionError::kTransportClosed);
  // The stage is named: with the pipe already closed the failure lands on
  // sending "@hello" — still the handshake, not a mid-session death.
  EXPECT_NE(outcome.error_detail.find("handshake"), std::string::npos);
  EXPECT_NE(outcome.error_detail.find("@hello"), std::string::npos);
}

TEST(SyncServerHandshakeTest, EofAfterHelloIsTransportClosedWithStage) {
  // The server reads the "@hello" and then dies without answering: the
  // client must report kTransportClosed pinned to the handshake stage,
  // not a generic failure.
  auto [server_end, client_end] = net::PipeStream::CreatePair();
  std::thread server_thread([stream = std::move(server_end)] {
    net::FramedStream framed(stream.get());
    transport::Message hello;
    ASSERT_EQ(framed.Receive(&hello), net::FramedStream::RecvStatus::kMessage);
    EXPECT_EQ(hello.label, kHelloLabel);
    stream->Close();
  });
  SyncClientOptions options;
  options.context = Ctx();
  const SyncClient client(options);
  const SyncOutcome outcome =
      client.Sync(client_end.get(), "quadtree", Canonical(16));
  server_thread.join();
  EXPECT_FALSE(outcome.handshake_ok);
  EXPECT_FALSE(outcome.result.success);
  EXPECT_EQ(outcome.result.error, SessionError::kTransportClosed);
  EXPECT_NE(outcome.error_detail.find("handshake"), std::string::npos);
  EXPECT_NE(outcome.error_detail.find("@accept"), std::string::npos);
}

TEST(SyncServerHandshakeTest, MidSessionDeathNamesTheSessionStage) {
  // The server completes the handshake and then vanishes: the detail must
  // name the session stage, distinguishing it from a handshake failure.
  auto [server_end, client_end] = net::PipeStream::CreatePair();
  std::thread server_thread([stream = std::move(server_end)] {
    net::FramedStream framed(stream.get());
    transport::Message incoming;
    ASSERT_EQ(framed.Receive(&incoming),
              net::FramedStream::RecvStatus::kMessage);
    AcceptFrame ack;
    ack.protocol = "quadtree";
    framed.Send(EncodeAccept(ack));
    stream->Close();
  });
  SyncClientOptions options;
  options.context = Ctx();
  options.params = Params();
  const SyncClient client(options);
  const SyncOutcome outcome =
      client.Sync(client_end.get(), "quadtree", Canonical(16));
  server_thread.join();
  EXPECT_TRUE(outcome.handshake_ok);
  EXPECT_FALSE(outcome.result.success);
  EXPECT_EQ(outcome.result.error, SessionError::kTransportClosed);
  EXPECT_NE(outcome.error_detail.find("session"), std::string::npos);
}

}  // namespace
}  // namespace server
}  // namespace rsr
