// Metrics-registry unit tests (DESIGN.md §12): bucket-boundary `le`
// semantics, pinned quantile interpolation, a byte-exact Prometheus
// rendering golden, registry lookups across label sets, and a
// multi-threaded record/snapshot hammer the CI TSan job runs to prove
// the lock-free hot path is actually race-free.

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace rsr {
namespace obs {
namespace {

TEST(HistogramTest, BoundaryObservationLandsInItsLeBucket) {
  // Prometheus `le` semantics: an observation EQUAL to a bound belongs to
  // that bound's bucket, not the next one.
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(1.0);
  h.Observe(2.0);
  h.Observe(4.0);
  h.Observe(4.0000001);  // just past the last bound -> +Inf
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 4u);
}

TEST(HistogramTest, QuantilePinsLinearInterpolation) {
  // bounds {1,2,4}, observations {1,1,2,2,3,3,4,4}:
  //   bucket le=1 -> 2, le=2 -> 2, le=4 -> 4, +Inf -> 0.
  Histogram h({1.0, 2.0, 4.0});
  for (double v : {1.0, 1.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0}) h.Observe(v);
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.count, 8u);
  // p50: rank 4 is the last observation of the le=2 bucket — exactly its
  // upper edge.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 2.0);
  // p90: rank 7.2, 3.2/4 of the way through the (2,4] bucket.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.9), 3.6);
  // p99: rank 7.92 -> 2 + 2 * 3.92/4.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 3.96);
  // p100 clamps to the top finite bound.
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(snap.sum, 20.0);
}

TEST(HistogramTest, QuantileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_DOUBLE_EQ(empty.Snapshot().Quantile(0.5), 0.0);

  // Everything in +Inf: no finite edge to interpolate toward, so the
  // estimate clamps to the top finite bound (histogram_quantile does the
  // same).
  Histogram overflow({1.0, 2.0});
  overflow.Observe(100.0);
  EXPECT_DOUBLE_EQ(overflow.Snapshot().Quantile(0.99), 2.0);
}

TEST(HistogramTest, DefaultBoundLaddersAreStrictlyIncreasing) {
  for (const std::vector<double>& bounds :
       {DefaultLatencyBounds(), DefaultDepthBounds()}) {
    ASSERT_GE(bounds.size(), 2u);
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

TEST(MetricsRegistryTest, PrometheusRenderingGolden) {
  MetricsRegistry registry;
  registry.GetCounter("test_requests_total", "Requests served",
                      {{"code", "200"}})
      ->Inc(3);
  registry.GetCounter("test_requests_total", "Requests served",
                      {{"code", "500"}})
      ->Inc();
  registry.GetGauge("test_depth", "Queue depth")->Set(-2);
  Histogram* h = registry.GetHistogram("test_latency_seconds", "Latency",
                                       {0.001, 0.01});
  h->Observe(0.001);
  h->Observe(0.5);

  // Families in name order; cumulative le buckets; _sum/_count series.
  const std::string expected =
      "# HELP test_depth Queue depth\n"
      "# TYPE test_depth gauge\n"
      "test_depth -2\n"
      "# HELP test_latency_seconds Latency\n"
      "# TYPE test_latency_seconds histogram\n"
      "test_latency_seconds_bucket{le=\"0.001\"} 1\n"
      "test_latency_seconds_bucket{le=\"0.01\"} 1\n"
      "test_latency_seconds_bucket{le=\"+Inf\"} 2\n"
      "test_latency_seconds_sum 0.501\n"
      "test_latency_seconds_count 2\n"
      "# HELP test_requests_total Requests served\n"
      "# TYPE test_requests_total counter\n"
      "test_requests_total{code=\"200\"} 3\n"
      "test_requests_total{code=\"500\"} 1\n";
  EXPECT_EQ(registry.RenderPrometheus(), expected);
}

TEST(MetricsRegistryTest, LookupsAcrossLabelSets) {
  MetricsRegistry registry;
  registry.GetCounter("c_total", "c", {{"dir", "in"}})->Inc(5);
  registry.GetCounter("c_total", "c", {{"dir", "out"}})->Inc(7);
  EXPECT_EQ(registry.CounterValue("c_total", {{"dir", "in"}}), 5u);
  EXPECT_EQ(registry.CounterValue("c_total", {{"dir", "out"}}), 7u);
  EXPECT_EQ(registry.CounterValue("c_total", {{"dir", "sideways"}}), 0u);
  EXPECT_EQ(registry.CounterValue("absent_total"), 0u);
  EXPECT_EQ(registry.SumCounters("c_total"), 12u);

  registry.GetGauge("g", "g")->Set(-40);
  EXPECT_EQ(registry.GaugeValue("g"), -40);
  EXPECT_EQ(registry.GaugeValue("absent"), 0);

  registry.GetHistogram("h_seconds", "h", {1.0, 2.0}, {{"p", "a"}})
      ->Observe(0.5);
  registry.GetHistogram("h_seconds", "h", {1.0, 2.0}, {{"p", "b"}})
      ->Observe(1.5);
  EXPECT_FALSE(registry.SnapshotHistogram("absent").has_value());
  const auto one = registry.SnapshotHistogram("h_seconds", {{"p", "a"}});
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->count, 1u);
  // The family merge adds buckets/count/sum across label sets.
  const auto merged = registry.SnapshotHistogramSum("h_seconds");
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->count, 2u);
  EXPECT_DOUBLE_EQ(merged->sum, 2.0);
  EXPECT_EQ(merged->buckets[0], 1u);
  EXPECT_EQ(merged->buckets[1], 1u);
}

TEST(MetricsRegistryTest, GetReturnsStableSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x_total", "x");
  Counter* b = registry.GetCounter("x_total", "x");
  EXPECT_EQ(a, b);
  a->Inc();
  EXPECT_EQ(b->value(), 1u);
}

// The TSan claim: writers record through relaxed atomics with no lock
// while readers snapshot and render concurrently, and registration
// itself races from many threads. Totals must still be exact.
TEST(MetricsRegistryTest, ConcurrentRecordSnapshotAndRegister) {
  constexpr size_t kThreads = 8;
  constexpr size_t kIters = 20000;
  MetricsRegistry registry;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&registry, t] {
      // First-use registration races across threads by design.
      Counter* counter = registry.GetCounter("hammer_total", "hammer");
      Gauge* gauge = registry.GetGauge("hammer_depth", "hammer");
      Histogram* histogram = registry.GetHistogram(
          "hammer_seconds", "hammer", {0.25, 0.5, 0.75},
          {{"thread", std::to_string(t % 2)}});
      for (size_t i = 0; i < kIters; ++i) {
        counter->Inc();
        gauge->Add(1);
        histogram->Observe(static_cast<double>(i % 4) / 4.0);
      }
    });
  }
  std::thread reader([&registry] {
    for (size_t i = 0; i < 200; ++i) {
      const std::string text = registry.RenderPrometheus();
      EXPECT_NE(text.find("hammer_total"), std::string::npos);
      (void)registry.SnapshotHistogramSum("hammer_seconds");
      (void)registry.CounterValue("hammer_total");
    }
  });
  for (std::thread& w : writers) w.join();
  reader.join();

  EXPECT_EQ(registry.CounterValue("hammer_total"), kThreads * kIters);
  EXPECT_EQ(registry.GaugeValue("hammer_depth"),
            static_cast<int64_t>(kThreads * kIters));
  const auto merged = registry.SnapshotHistogramSum("hammer_seconds");
  ASSERT_TRUE(merged.has_value());
  EXPECT_EQ(merged->count, kThreads * kIters);
}

}  // namespace
}  // namespace obs
}  // namespace rsr
