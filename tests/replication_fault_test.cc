// Replication verbs under wire faults: "@log-fetch" tails and "@pull"
// repairs must survive dribbled (1-byte read / 1..3-byte write) streams
// on both the threaded and async hosts, and a mid-verb disconnect must
// leave the puller's state untouched — same seq, same points — with the
// next clean round converging. Runs under TSan in CI alongside
// replica_test (serving threads + reactor shards race against the
// fault-injected client side).

#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/fault_stream.h"
#include "net/pipe_stream.h"
#include "net/tcp.h"
#include "replica/replica_node.h"
#include "server/async_sync_server.h"
#include "server/sync_client.h"
#include "server/sync_server.h"
#include "util/random.h"
#include "workload/churn.h"
#include "workload/generator.h"

namespace rsr {
namespace replica {
namespace {

using RoundPath = RoundRecord::Path;

recon::ProtocolContext Ctx() {
  recon::ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 12, 2);
  ctx.seed = 9;
  return ctx;
}

recon::ProtocolParams Params() {
  recon::ProtocolParams params;
  params.k = 8;
  return params;
}

PointSet Cloud(size_t n, uint64_t seed) {
  workload::CloudSpec spec;
  spec.universe = Ctx().universe;
  spec.n = n;
  spec.shape = workload::CloudShape::kClusters;
  Rng rng(seed);
  return workload::GenerateCloud(spec, &rng);
}

ReplicaNodeOptions NodeOptions(size_t log_capacity) {
  ReplicaNodeOptions options;
  options.server.context = Ctx();
  options.server.params = Params();
  options.changelog.capacity = log_capacity;
  return options;
}

workload::ChurnSpec SmallChurn() {
  workload::ChurnSpec spec;
  spec.fraction = 0.0;
  spec.min_updates = 1;
  return spec;
}

void Churn(ReplicaNode* writer, size_t batches, Rng* rng) {
  for (size_t i = 0; i < batches; ++i) {
    const workload::ChurnBatch batch = workload::MakeChurnBatch(
        writer->points(), Ctx().universe, SmallChurn(), rng);
    writer->Apply(batch.inserts, batch.erases);
  }
}

/// Dials the writer's threaded host through a fresh pipe pair, serving the
/// far end on a collected thread; the near end is wrapped in `faults`.
StreamFactory FaultyPipeTo(ReplicaNode* host,
                           std::vector<std::thread>* serve_threads,
                           net::FaultOptions faults) {
  return [host, serve_threads, faults]() -> std::unique_ptr<net::ByteStream> {
    auto [server_end, client_end] = net::PipeStream::CreatePair();
    serve_threads->emplace_back(
        [host, end = std::move(server_end)]() mutable {
          host->host().ServeConnection(end.get());
        });
    return net::MaybeWrapFaulty(std::move(client_end), faults);
  };
}

void JoinAll(std::vector<std::thread>* serve_threads) {
  for (std::thread& t : *serve_threads) t.join();
  serve_threads->clear();
}

TEST(ReplicationFaultTest, LogFetchTailSurvivesDribbledStream) {
  ReplicaNode writer(Cloud(96, 4242), NodeOptions(64));
  ReplicaNode follower(Cloud(96, 4242), NodeOptions(64));
  Rng rng(7);
  Churn(&writer, 3, &rng);

  net::FaultOptions dribble;
  dribble.dribble = true;
  dribble.seed = 77;
  std::vector<std::thread> serve_threads;
  const RoundRecord round =
      follower.SyncWithPeer(FaultyPipeTo(&writer, &serve_threads, dribble));
  JoinAll(&serve_threads);

  EXPECT_EQ(round.path, RoundPath::kTail) << round.error_detail;
  EXPECT_TRUE(round.ok);
  EXPECT_EQ(round.entries_applied, 3u);
  EXPECT_EQ(follower.applied_seq(), 3u);
  EXPECT_EQ(SetDivergence(follower.points(), writer.points()), 0u);
}

TEST(ReplicationFaultTest, PullRepairSurvivesDribbledStream) {
  ReplicaNodeOptions options = NodeOptions(1);  // one-entry ring
  options.exact_budget = 1000;                  // keep repairs exact
  ReplicaNode writer(Cloud(96, 4242), options);
  ReplicaNode follower(Cloud(96, 4242), options);
  Rng rng(8);
  Churn(&writer, 3, &rng);  // follower (seq 0) has fallen off the ring

  net::FaultOptions dribble;
  dribble.dribble = true;
  dribble.seed = 78;
  std::vector<std::thread> serve_threads;
  const RoundRecord round =
      follower.SyncWithPeer(FaultyPipeTo(&writer, &serve_threads, dribble));
  JoinAll(&serve_threads);

  EXPECT_EQ(round.path, RoundPath::kRepairExact) << round.error_detail;
  EXPECT_TRUE(round.ok);
  EXPECT_EQ(follower.applied_seq(), writer.applied_seq());
  EXPECT_EQ(SetDivergence(follower.points(), writer.points()), 0u);
}

TEST(ReplicationFaultTest, MidFetchDisconnectLeavesStateUntouchedThenRecovers) {
  ReplicaNode writer(Cloud(96, 4242), NodeOptions(64));
  ReplicaNode follower(Cloud(96, 4242), NodeOptions(64));
  Rng rng(9);
  Churn(&writer, 3, &rng);

  const uint64_t seq_before = follower.applied_seq();
  const PointSet points_before = follower.points();

  // The budget kills the stream mid-"@log-fetch": either the request or
  // the "@log-batch" reply dies partway.
  net::FaultOptions kill;
  kill.close_after_bytes = 24;
  std::vector<std::thread> serve_threads;
  const RoundRecord failed =
      follower.SyncWithPeer(FaultyPipeTo(&writer, &serve_threads, kill));
  JoinAll(&serve_threads);

  EXPECT_EQ(failed.path, RoundPath::kError);
  EXPECT_FALSE(failed.ok);
  EXPECT_FALSE(failed.error_detail.empty());
  // Nothing installed: the puller's position and set are untouched.
  EXPECT_EQ(follower.applied_seq(), seq_before);
  EXPECT_EQ(follower.points(), points_before);
  EXPECT_FALSE(follower.dirty());

  // The next clean round converges as if the fault never happened.
  const RoundRecord clean =
      follower.SyncWithPeer(FaultyPipeTo(&writer, &serve_threads, {}));
  JoinAll(&serve_threads);
  EXPECT_EQ(clean.path, RoundPath::kTail) << clean.error_detail;
  EXPECT_TRUE(clean.ok);
  EXPECT_EQ(SetDivergence(follower.points(), writer.points()), 0u);
}

TEST(ReplicationFaultTest, MidPullDisconnectEscalatesThenConverges) {
  ReplicaNodeOptions options = NodeOptions(1);
  options.exact_budget = 1000;
  ReplicaNode writer(Cloud(96, 4242), options);
  ReplicaNode follower(Cloud(96, 4242), options);
  Rng rng(10);
  Churn(&writer, 3, &rng);

  const uint64_t seq_before = follower.applied_seq();
  const PointSet points_before = follower.points();

  // Split-dialer seam: the fetch leg is clean (so the round reaches the
  // repair decision) and the "@pull" leg dies after a small byte budget —
  // a disconnect mid-repair-session.
  net::FaultOptions kill;
  kill.close_after_bytes = 96;
  std::vector<std::thread> serve_threads;
  const RoundRecord failed = follower.SyncWithPeer(
      FaultyPipeTo(&writer, &serve_threads, {}),
      FaultyPipeTo(&writer, &serve_threads, kill));
  JoinAll(&serve_threads);

  EXPECT_EQ(failed.path, RoundPath::kError);
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(follower.applied_seq(), seq_before);
  EXPECT_EQ(follower.points(), points_before);

  // A failed repair SESSION arms the escalation latch: the next repair
  // skips the sized bands and full-transfers, then converges.
  const RoundRecord recovered =
      follower.SyncWithPeer(FaultyPipeTo(&writer, &serve_threads, {}));
  JoinAll(&serve_threads);
  EXPECT_TRUE(recovered.ok) << recovered.error_detail;
  EXPECT_EQ(recovered.path, RoundPath::kRepairFull)
      << RoundPathName(recovered.path);
  EXPECT_EQ(follower.applied_seq(), writer.applied_seq());
  EXPECT_EQ(SetDivergence(follower.points(), writer.points()), 0u);
}

TEST(ReplicationFaultTest, AsyncHostTailSurvivesDribbleAndDisconnect) {
  Changelog changelog;
  server::AsyncSyncServerOptions async_options;
  async_options.context = Ctx();
  async_options.params = Params();
  async_options.changelog = &changelog;
  server::AsyncSyncServer async_server(Cloud(96, 4242), async_options);
  ASSERT_TRUE(async_server.Start(net::TcpListener::Listen("127.0.0.1", 0)));

  Rng rng(11);
  for (size_t i = 0; i < 2; ++i) {
    const workload::ChurnBatch batch = workload::MakeChurnBatch(
        async_server.canonical(), Ctx().universe, SmallChurn(), &rng);
    async_server.ApplyUpdate(batch.inserts, batch.erases);
  }
  ASSERT_EQ(async_server.replica_seq(), 2u);

  ReplicaNode follower(Cloud(96, 4242), NodeOptions(64));
  const uint16_t port = async_server.port();
  const auto tcp_dialer =
      [port](net::FaultOptions faults) -> StreamFactory {
    return [port, faults]() -> std::unique_ptr<net::ByteStream> {
      auto stream = net::TcpStream::Connect("127.0.0.1", port);
      if (stream == nullptr) return nullptr;
      return net::MaybeWrapFaulty(std::move(stream), faults);
    };
  };
  // The async host serves "@log-fetch" but not "@pull" (DESIGN.md §10);
  // these rounds are pure tails, so the repair leg must never dial.
  const StreamFactory no_repair = []() -> std::unique_ptr<net::ByteStream> {
    ADD_FAILURE() << "tail round dialed the repair leg";
    return nullptr;
  };

  // Disconnect first: the reactor must shrug off the dead connection...
  net::FaultOptions kill;
  kill.close_after_bytes = 24;
  const RoundRecord failed =
      follower.SyncWithPeer(tcp_dialer(kill), no_repair);
  EXPECT_EQ(failed.path, RoundPath::kError);
  EXPECT_EQ(follower.applied_seq(), 0u);

  // ...and keep serving: a dribbled tail from the same follower succeeds.
  net::FaultOptions dribble;
  dribble.dribble = true;
  dribble.seed = 79;
  const RoundRecord tail =
      follower.SyncWithPeer(tcp_dialer(dribble), no_repair);
  EXPECT_EQ(tail.path, RoundPath::kTail) << tail.error_detail;
  EXPECT_TRUE(tail.ok);
  EXPECT_EQ(tail.entries_applied, 2u);
  EXPECT_EQ(follower.applied_seq(), 2u);
  EXPECT_EQ(SetDivergence(follower.points(), async_server.canonical()), 0u);

  async_server.Stop();
}

}  // namespace
}  // namespace replica
}  // namespace rsr
