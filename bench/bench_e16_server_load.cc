// E16 — Serving-layer load: many concurrent clients over real sockets.
//
// One SyncServer holds a canonical clustered cloud; N client threads each
// connect over loopback TCP, negotiate a registry protocol, and sync a
// drifted replica. Per (clients × protocol) configuration the table
// reports two separate success columns — `ok`, syncs whose served outcome
// is bit-identical to recon::DrivePair on the same inputs (the fidelity
// count), and `decoded`, syncs whose protocol-level result succeeded (the
// availability count) — plus throughput (syncs/sec across the whole
// burst), framed bytes per sync in each direction, the server's mean
// per-session wall time, and `match_driver` = ok / clients, which must be
// 1. Keeping ok and decoded separate is what makes a row like the old
// riblt-oneshot one (an undersized sketch failing to decode on every sync,
// reported as ok: 0 / match_driver: 1) impossible to misread: fidelity and
// decode success are different claims. The one-shot RIBLT is sized for the
// drift actually configured here (every point perturbed plus the planted
// outliers — an exact-key delta of up to 2·(n + outliers)), so its rows
// now decode. Expected shape: syncs/sec scales with the burst size until
// the worker pool saturates.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/tcp.h"
#include "obs/trace.h"
#include "recon/driver.h"
#include "server/sync_client.h"
#include "server/sync_server.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace rsr {
namespace {

constexpr size_t kSetSize = 256;
constexpr size_t kOutliers = 6;
constexpr double kNoise = 1.0;

recon::ProtocolContext Ctx() {
  recon::ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 14, 2);
  ctx.seed = 616;
  return ctx;
}

recon::ProtocolParams Params() {
  recon::ProtocolParams params;
  // Per-family budgets instead of the shared k override: the EMD-model
  // sketches are sized for the k planted outliers as before, but the
  // exact-key one-shot RIBLT must be sized for its *exact-key* delta —
  // with per-point noise, every perturbed point differs, so the table has
  // to budget for both sides of the whole set or decode is guaranteed to
  // fail (the old ok: 0 rows).
  params.quadtree.k = 8;
  params.mlsh.k = 8;
  params.riblt.k = 2 * (kSetSize + kOutliers);
  return params;
}

PointSet Canonical() {
  workload::CloudSpec spec;
  spec.universe = Ctx().universe;
  spec.n = kSetSize;
  spec.shape = workload::CloudShape::kClusters;
  Rng rng(991);
  return workload::GenerateCloud(spec, &rng);
}

PointSet DriftedReplica(const PointSet& base, uint64_t seed) {
  const Universe universe = Ctx().universe;
  Rng rng(seed);
  PointSet replica;
  replica.reserve(base.size());
  for (const Point& p : base) {
    replica.push_back(workload::PerturbPoint(
        p, universe, workload::NoiseKind::kGaussian, kNoise, &rng));
  }
  for (size_t i = 0; i < kOutliers; ++i) {
    Point fresh(universe.d);
    for (int j = 0; j < universe.d; ++j) {
      fresh[j] = static_cast<int64_t>(rng.Below(universe.delta));
    }
    replica[rng.Below(replica.size())] = std::move(fresh);
  }
  return replica;
}

/// One burst: `clients` concurrent TCP clients, client i negotiating
/// protocols[i % protocols.size()]. Emits one table row labelled `label`.
/// `latency_probes=false` serves with the optional probes off — the
/// overhead-comparison arm of the metrics layer (DESIGN.md §12). A
/// non-null `trace_sink` serves with per-session trace spans on (every
/// span emitted — the worst-case tracing arm).
void RunBurst(const PointSet& canonical, const std::string& label,
              const std::vector<std::string>& protocols, size_t clients,
              bool latency_probes = true,
              obs::TraceSink* trace_sink = nullptr) {
  server::SyncServerOptions server_options;
  server_options.context = Ctx();
  server_options.params = Params();
  server_options.worker_threads = 8;
  server_options.latency_probes = latency_probes;
  server_options.trace_sink = trace_sink;
  server::SyncServer server(canonical, server_options);
  if (!server.Start(net::TcpListener::Listen("127.0.0.1", 0))) {
    std::fprintf(stderr, "E16: failed to bind a loopback listener\n");
    return;
  }

  std::vector<PointSet> replicas(clients);
  for (size_t i = 0; i < clients; ++i) {
    replicas[i] = DriftedReplica(canonical, 3000 + 31 * i);
  }

  std::vector<server::SyncOutcome> outcomes(clients);
  const auto burst_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      server::SyncClientOptions options;
      options.context = Ctx();
      options.params = Params();
      const server::SyncClient client(options);
      auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
      if (stream == nullptr) return;
      outcomes[i] = client.Sync(stream.get(), protocols[i % protocols.size()],
                                replicas[i]);
    });
  }
  for (std::thread& t : threads) t.join();
  const double burst_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    burst_start)
          .count();
  server.Stop();

  size_t matched = 0, decoded = 0;
  for (size_t i = 0; i < clients; ++i) {
    const auto reconciler = recon::MakeReconciler(
        protocols[i % protocols.size()], Ctx(), Params());
    transport::Channel channel;
    const recon::ReconResult expected =
        reconciler->Run(replicas[i], canonical, &channel);
    if (bench::MatchesDriver(outcomes[i], expected)) ++matched;
    if (outcomes[i].result.success) ++decoded;
  }

  const server::SyncServerMetrics metrics = server.metrics();
  const double total_sessions =
      static_cast<double>(metrics.syncs_completed + metrics.syncs_failed);
  double mean_wall_ms = 0.0;
  for (const auto& [name, stats] : metrics.per_protocol) {
    (void)name;
    mean_wall_ms += stats.wall_seconds;
  }
  mean_wall_ms = total_sessions > 0
                     ? 1e3 * mean_wall_ms / total_sessions
                     : 0.0;

  // Standard machine-comparable wall-clock field (shared with E12/E17;
  // "syncs_per_sec" is already a table column here, so only "wall_ms"
  // needs the extras path), plus the registry's session-latency
  // quantiles.
  std::vector<std::pair<std::string, std::string>> extras =
      bench::LatencyExtras(server.metrics_registry());
  extras.emplace_back("wall_ms", bench::Num(1e3 * burst_seconds));
  extras.emplace_back("latency_probes", latency_probes ? "1" : "0");
  extras.emplace_back("traced", trace_sink != nullptr ? "1" : "0");
  // Registry-side session accounting, published so CI can catch drift
  // between the metrics registry and the bench's own client counting.
  extras.emplace_back(
      "sessions_total",
      std::to_string(
          server.metrics_registry().SumCounters("rsr_sync_sessions_total")));
  bench::RowExtras(std::move(extras));
  bench::Row({label, std::to_string(clients), std::to_string(matched),
              std::to_string(decoded),
              bench::Num(static_cast<double>(clients) / burst_seconds),
              bench::Num(static_cast<double>(metrics.bytes_in) /
                         static_cast<double>(clients)),
              bench::Num(static_cast<double>(metrics.bytes_out) /
                         static_cast<double>(clients)),
              bench::Num(mean_wall_ms),
              bench::Num(static_cast<double>(matched) /
                         static_cast<double>(clients))});
}

}  // namespace
}  // namespace rsr

int main() {
  using namespace rsr;
  bench::Banner("E16", "sync-server load: concurrent clients over TCP",
                "syncs/sec grows with the burst until workers saturate; "
                "every served result is bit-identical to the in-process "
                "driver (ok = clients, match_driver = 1) and every "
                "right-sized sketch decodes (decoded = clients)");
  bench::Row({"protocol", "clients", "ok", "decoded", "syncs_per_sec",
              "bytes_in_per", "bytes_out_per", "wall_ms_mean",
              "match_driver"});

  const PointSet canonical = Canonical();
  const std::vector<std::string> kSingles[] = {{"quadtree"},
                                               {"exact-iblt"},
                                               {"full-transfer"},
                                               {"gap-lattice"},
                                               {"riblt-oneshot"}};
  for (const auto& protocols : kSingles) {
    for (const size_t clients : {8, 32}) {
      RunBurst(canonical, protocols[0], protocols, clients);
    }
  }
  // Mixed burst: 32 clients round-robin over five protocols at once.
  RunBurst(canonical, "mixed-5",
           {"quadtree", "exact-iblt", "full-transfer", "gap-lattice",
            "riblt-oneshot"},
           32);
  // Overhead arm: the same mixed 32-client burst with the optional
  // latency probes off. Comparing syncs_per_sec between this row and
  // "mixed-5" bounds the metrics hot-path cost (target: <= 2%).
  RunBurst(canonical, "mixed-5-noprobe",
           {"quadtree", "exact-iblt", "full-transfer", "gap-lattice",
            "riblt-oneshot"},
           32, /*latency_probes=*/false);
  // Tracing arm: the same burst with per-session spans on and every span
  // emitted (sample_rate 1, a file sink) — the worst case of the tracing
  // layer. Comparing syncs_per_sec against "mixed-5-noprobe" re-pins the
  // observability hot-path overhead bound (target: <= 2%, DESIGN.md §12);
  // one span serialization per multi-round session is noise next to the
  // session's framing and sketch work.
  {
    obs::FileTraceSink trace_sink("/dev/null");
    RunBurst(canonical, "mixed-5-traced",
             {"quadtree", "exact-iblt", "full-transfer", "gap-lattice",
              "riblt-oneshot"},
             32, /*latency_probes=*/true, &trace_sink);
  }
  return 0;
}
