// Shared helpers for the experiment harnesses (bench_e1 .. bench_e14).
//
// Each harness prints a self-describing table: experiment id, the claim
// being reproduced ("paper shape"), the sweep axis, and one row per
// configuration. EXPERIMENTS.md records these outputs next to the claims.
//
// Alongside the human-readable table, every harness also writes a
// machine-readable BENCH_<id>.json (into $RSR_BENCH_JSON_DIR, default the
// working directory) so the perf trajectory can be tracked across PRs:
//   { "experiment": "E1", "title": ..., "shape": ...,
//     "columns": ["k", "quadtree_B", ...],
//     "rows": [{"k": 1, "quadtree_B": 1234.5, ...}, ...] }
// The first Row() after Banner() names the columns; numeric-looking cells
// are emitted as JSON numbers, everything else as strings.

#ifndef RSR_BENCH_BENCH_UTIL_H_
#define RSR_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "recon/evaluate.h"
#include "server/sync_client.h"
#include "util/stats.h"
#include "workload/scenario.h"

namespace rsr {
namespace bench {

/// True when a served sync is bit-identical to the in-process driver's
/// result on the same inputs — the definition every load harness's
/// `match_driver` column uses. Every ReconResult field must agree
/// (`bob_final` included when the driver succeeded), and the outcome's
/// error_detail must be empty: the in-process driver has no transport, so
/// a served session that failed at some transport stage is NOT a match
/// even if its synthesized result happens to mirror a driver-side protocol
/// failure. (Shared by E16/E17/E18 — two harnesses previously carried
/// diverging private copies that ignored error_detail.)
inline bool MatchesDriver(const server::SyncOutcome& outcome,
                          const recon::ReconResult& expected) {
  const recon::ReconResult& got = outcome.result;
  return outcome.handshake_ok && outcome.error_detail.empty() &&
         got.success == expected.success && got.error == expected.error &&
         got.chosen_level == expected.chosen_level &&
         got.decoded_entries == expected.decoded_entries &&
         got.attempts == expected.attempts &&
         got.transmitted == expected.transmitted &&
         (!expected.success || got.bob_final == expected.bob_final);
}

/// Incremental writer for BENCH_<id>.json. The whole (tiny) document is
/// rewritten after every row, so the file is always valid JSON even if the
/// harness is interrupted.
class JsonSink {
 public:
  static JsonSink& Instance() {
    static JsonSink sink;
    return sink;
  }

  void Open(const std::string& id, const std::string& title,
            const std::string& shape) {
    id_ = id;
    title_ = title;
    shape_ = shape;
    columns_.clear();
    rows_.clear();
    const char* dir = std::getenv("RSR_BENCH_JSON_DIR");
    path_ = (dir != nullptr && dir[0] != '\0')
                ? std::string(dir) + "/BENCH_" + id + ".json"
                : "BENCH_" + id + ".json";
    // The file is only materialised once a row arrives, so switching to a
    // per-table sink (JsonTable) before any Row leaves no empty stub.
  }

  void Row(const std::vector<std::string>& cells) {
    if (path_.empty()) return;  // no Banner yet
    if (columns_.empty()) {
      columns_ = cells;  // header row
      pending_extras_.clear();
    } else {
      rows_.push_back({cells, std::move(pending_extras_)});
      pending_extras_.clear();
    }
    Flush();
  }

  /// JSON-only key/value pairs attached to the NEXT data row, on top of
  /// its table cells. Harnesses use this for the standard throughput
  /// fields ("wall_ms", "syncs_per_sec") so BENCH_*.json rows stay
  /// machine-comparable across experiments and PRs even where the printed
  /// tables differ.
  void Extras(std::vector<std::pair<std::string, std::string>> extras) {
    pending_extras_ = std::move(extras);
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  }

  // Numeric-looking cells become JSON numbers.
  static std::string Cell(const std::string& s) {
    if (!s.empty()) {
      char* end = nullptr;
      std::strtod(s.c_str(), &end);
      if (end != nullptr && *end == '\0') return s;
    }
    return "\"" + Escape(s) + "\"";
  }

  void Flush() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) return;  // e.g. read-only working directory
    std::fprintf(f, "{\n  \"experiment\": \"%s\",\n", Escape(id_).c_str());
    std::fprintf(f, "  \"title\": \"%s\",\n", Escape(title_).c_str());
    std::fprintf(f, "  \"shape\": \"%s\",\n", Escape(shape_).c_str());
    std::fprintf(f, "  \"columns\": [");
    for (size_t i = 0; i < columns_.size(); ++i) {
      std::fprintf(f, "%s\"%s\"", i ? ", " : "",
                   Escape(columns_[i]).c_str());
    }
    std::fprintf(f, "],\n  \"rows\": [\n");
    for (size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "    {");
      const auto& row = rows_[r];
      size_t emitted = 0;
      for (size_t i = 0; i < row.cells.size(); ++i) {
        const std::string key =
            i < columns_.size() ? columns_[i] : "col" + std::to_string(i);
        std::fprintf(f, "%s\"%s\": %s", emitted++ ? ", " : "",
                     Escape(key).c_str(), Cell(row.cells[i]).c_str());
      }
      for (const auto& [key, value] : row.extras) {
        // A table column of the same name already carries the value;
        // emitting the extra too would duplicate the JSON key.
        if (std::find(columns_.begin(), columns_.end(), key) !=
            columns_.end()) {
          continue;
        }
        std::fprintf(f, "%s\"%s\": %s", emitted++ ? ", " : "",
                     Escape(key).c_str(), Cell(value).c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
  }

  struct StoredRow {
    std::vector<std::string> cells;
    std::vector<std::pair<std::string, std::string>> extras;
  };

  std::string id_, title_, shape_, path_;
  std::vector<std::string> columns_;
  std::vector<StoredRow> rows_;
  std::vector<std::pair<std::string, std::string>> pending_extras_;
};

/// Prints the experiment banner and opens BENCH_<id>.json.
inline void Banner(const char* id, const char* title, const char* shape) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("paper shape: %s\n", shape);
  std::printf("==============================================================\n");
  JsonSink::Instance().Open(id, title, shape);
}

/// Prints a row of cells separated by two spaces, padded to width 14, and
/// mirrors it into the JSON sink (first row after Banner = column names).
inline void Row(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    std::printf("%-14s", cell.c_str());
  }
  std::printf("\n");
  JsonSink::Instance().Row(cells);
}

/// Attaches JSON-only key/value pairs to the next data row. The standard
/// throughput fields every load harness should attach are "wall_ms" (the
/// configuration's total wall clock) and "syncs_per_sec"; E12/E16/E17 use
/// them so throughput is machine-comparable across PRs.
inline void RowExtras(
    std::vector<std::pair<std::string, std::string>> extras) {
  JsonSink::Instance().Extras(std::move(extras));
}

/// Redirects the JSON sink to a fresh BENCH_<id>.json without printing a
/// new banner. Harnesses that emit several tables under one banner (e.g.
/// E14's stride and checksum sweeps) call this before each table's header
/// row so every table gets coherent columns.
inline void JsonTable(const char* id, const char* title, const char* shape) {
  JsonSink::Instance().Open(id, title, shape);
}

inline std::string Num(double v, int digits = 5) {
  return FormatCompact(v, digits);
}

/// Session-latency quantile extras for a serving host's row: "p50_ms" and
/// "p99_ms" from the host registry's rsr_sync_session_seconds histograms,
/// merged across protocols (DESIGN.md §12). Empty when no session has
/// been recorded, so callers can splice the result unconditionally.
inline std::vector<std::pair<std::string, std::string>> LatencyExtras(
    const obs::MetricsRegistry& registry) {
  std::vector<std::pair<std::string, std::string>> extras;
  const std::optional<obs::HistogramSnapshot> snap =
      registry.SnapshotHistogramSum("rsr_sync_session_seconds");
  if (snap.has_value() && snap->count > 0) {
    extras.emplace_back("p50_ms", Num(1e3 * snap->Quantile(0.5)));
    extras.emplace_back("p99_ms", Num(1e3 * snap->Quantile(0.99)));
  }
  return extras;
}

inline std::string Bits(size_t bits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(bits) / 8.0);
  return std::string(buf);  // bytes
}

}  // namespace bench
}  // namespace rsr

#endif  // RSR_BENCH_BENCH_UTIL_H_
