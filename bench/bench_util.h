// Shared helpers for the experiment harnesses (bench_e1 .. bench_e11).
//
// Each harness prints a self-describing table: experiment id, the claim
// being reproduced ("paper shape"), the sweep axis, and one row per
// configuration. EXPERIMENTS.md records these outputs next to the claims.

#ifndef RSR_BENCH_BENCH_UTIL_H_
#define RSR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "recon/evaluate.h"
#include "util/stats.h"
#include "workload/scenario.h"

namespace rsr {
namespace bench {

/// Prints the experiment banner.
inline void Banner(const char* id, const char* title, const char* shape) {
  std::printf("==============================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("paper shape: %s\n", shape);
  std::printf("==============================================================\n");
}

/// Prints a row of cells separated by two spaces, padded to width 14.
inline void Row(const std::vector<std::string>& cells) {
  for (const std::string& cell : cells) {
    std::printf("%-14s", cell.c_str());
  }
  std::printf("\n");
}

inline std::string Num(double v, int digits = 5) {
  return FormatCompact(v, digits);
}

inline std::string Bits(size_t bits) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(bits) / 8.0);
  return std::string(buf);  // bytes
}

}  // namespace bench
}  // namespace rsr

#endif  // RSR_BENCH_BENCH_UTIL_H_
