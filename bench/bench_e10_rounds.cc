// E10 — Rounds-vs-bytes ablation: one-shot vs. adaptive negotiation.
//
// For several (k, Δ) the table shows total bytes, rounds and the per-phase
// byte breakdown from the channel transcript. Expected shape: the adaptive
// variant replaces the (log Δ)-fold IBLT shipment with cheap strata probes
// plus one IBLT, winning once k (and thus per-level IBLT size) is large;
// it always pays 2 extra rounds.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "recon/registry.h"

namespace rsr {
namespace {

void RunOne(size_t k, int log_delta) {
  const size_t n = 1024;
  const int64_t delta = int64_t{1} << log_delta;
  const workload::Scenario scenario = workload::StandardScenario(
      n, 2, delta, k, /*noise=*/2.0, /*seed=*/9);
  const workload::ReplicaPair pair = scenario.Materialize();
  recon::ProtocolContext ctx;
  ctx.universe = scenario.universe;
  ctx.seed = 37;
  recon::ProtocolParams pp;
  pp.k = k;

  transport::Channel oneshot_channel, adaptive_channel;
  (void)recon::MakeReconciler("quadtree", ctx, pp)
      ->Run(pair.alice, pair.bob, &oneshot_channel);
  (void)recon::MakeReconciler("quadtree-adaptive", ctx, pp)
      ->Run(pair.alice, pair.bob, &adaptive_channel);

  std::map<std::string, size_t> phase_bits;
  for (const auto& entry : adaptive_channel.transcript()) {
    phase_bits[entry.label] += entry.bits;
  }
  bench::Row({std::to_string(k), std::to_string(log_delta),
              bench::Bits(oneshot_channel.stats().total_bits),
              std::to_string(oneshot_channel.stats().rounds),
              bench::Bits(adaptive_channel.stats().total_bits),
              std::to_string(adaptive_channel.stats().rounds),
              bench::Bits(phase_bits["qt-strata"]),
              bench::Bits(phase_bits["qt-level-iblt"])});
}

void RunE10() {
  bench::Banner("E10", "one-shot vs adaptive rounds ablation (n=1024, d=2, "
                "eps=2)",
                "adaptive trades 2 extra rounds for ~log Delta fewer IBLT "
                "bytes; wins for large k and Delta");
  bench::Row({"k", "log2Delta", "oneshot_B", "os_rounds", "adaptive_B",
              "ad_rounds", "probe_B", "iblt_B"});
  for (size_t k : {4, 16, 64}) {
    for (int log_delta : {12, 20, 28}) {
      RunOne(k, log_delta);
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace rsr

int main() {
  rsr::RunE10();
  return 0;
}
