// E7 — Level-selection ablation: forced single level vs. automatic ℓ*.
//
// Fixed instance (n = 256, k = 8, noise ε = 4); force the protocol to a
// single grid level and compare with the multi-scale automatic choice.
// Expected shape: levels finer than the noise scale fail to decode at all;
// levels coarser than necessary decode but inflate EMD by the growing cell
// diameter; the automatic choice sits at the knee.

#include <cstdio>

#include "bench/bench_util.h"
#include "recon/registry.h"
#include "util/stats.h"

namespace rsr {
namespace {

void RunE7() {
  bench::Banner("E7", "forced level vs auto (n=256, d=2, delta=2^16, k=8, "
                "eps=4)",
                "fine levels fail to decode; coarse levels inflate EMD; "
                "auto picks the knee");
  bench::Row({"level", "succ_rate", "bytes", "emd_after_mean"});

  const size_t n = 256, k = 8;
  const int trials = 8;

  auto run_trials = [&](int forced_level) {
    SampleSet emds;
    size_t bits = 0;
    int successes = 0;
    double auto_level_sum = 0;
    for (int t = 0; t < trials; ++t) {
      const workload::Scenario scenario = workload::StandardScenario(
          n, 2, int64_t{1} << 16, k, /*noise=*/4.0,
          /*seed=*/300 + static_cast<uint64_t>(t));
      const workload::ReplicaPair pair = scenario.Materialize();
      recon::ProtocolContext ctx;
      ctx.universe = scenario.universe;
      ctx.seed = 31 + static_cast<uint64_t>(t);
      recon::ProtocolParams pp;
      pp.k = k;
      recon::EvaluateOptions options;
      options.metric = scenario.metric;
      recon::Evaluation eval;
      if (forced_level < 0) {
        eval = EvaluateProtocol("quadtree", ctx, pp, pair.alice, pair.bob,
                                options);
        auto_level_sum += eval.chosen_level;
      } else {
        pp.single_grid_level = forced_level;
        eval = EvaluateProtocol("single-grid", ctx, pp, pair.alice,
                                pair.bob, options);
      }
      bits = eval.comm_bits;
      if (eval.success) {
        ++successes;
        emds.Add(eval.emd_after);
      }
    }
    bench::Row({forced_level < 0
                    ? "auto(" + bench::Num(auto_level_sum / trials, 3) + ")"
                    : std::to_string(forced_level),
                bench::Num(static_cast<double>(successes) / trials),
                bench::Bits(bits),
                emds.count() ? bench::Num(emds.Mean()) : "n/a"});
  };

  for (int level : {0, 1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16}) {
    run_trials(level);
  }
  run_trials(-1);  // automatic multi-scale choice
  std::printf("\n");
}

}  // namespace
}  // namespace rsr

int main() {
  rsr::RunE7();
  return 0;
}
