// E17 — Async vs threaded serving under concurrent load.
//
// The same mixed-protocol TCP burst is served twice at equal total thread
// count: once by the thread-per-connection SyncServer with 2 workers
// (connections queue; at most 2 sessions are ever live) and once by the
// epoll-sharded AsyncSyncServer with 2 shards (every connection is live at
// once). Per (host × clients) configuration the table reports `ok` (syncs
// bit-identical to the driver) and `decoded` (protocol-level successes) as
// separate columns — fidelity and decode success are different claims, see
// bench_e16 — plus syncs/sec over the whole burst, the burst wall clock,
// `peak_active` — the high-water mark of concurrently open sessions, the
// column that shows the threaded host serializing (peak_active <= workers)
// while the async host sustains the burst — and `match_driver` =
// ok / clients, which must be 1 everywhere.
//
// Expected shape: equal match_driver and broadly comparable syncs/sec on
// a warm loopback (the work is protocol CPU either way), but peak_active
// pinned at 2 for the threaded host vs the full burst for the async one —
// the difference between a pool that blocks per client and a reactor that
// scales concurrency to fd limits.

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/tcp.h"
#include "recon/driver.h"
#include "server/async_sync_server.h"
#include "server/sync_client.h"
#include "server/sync_server.h"
#include "workload/generator.h"

namespace rsr {
namespace {

constexpr size_t kSetSize = 128;
constexpr size_t kOutliers = 4;
constexpr double kNoise = 1.0;
constexpr size_t kThreadsPerHost = 2;  // 2 workers vs 2 shards

const std::vector<std::string>& Protocols() {
  static const std::vector<std::string> protocols = {
      "quadtree", "exact-iblt", "full-transfer", "gap-lattice",
      "riblt-oneshot"};
  return protocols;
}

recon::ProtocolContext Ctx() {
  recon::ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 14, 2);
  ctx.seed = 1717;
  return ctx;
}

recon::ProtocolParams Params() {
  recon::ProtocolParams params;
  // Per-family budgets, as in E16: the one-shot RIBLT is exact-key, so its
  // table must be sized for the full per-point drift, not the outlier
  // budget (undersizing produced the ok: 0 / match_driver: 1 rows this
  // bench used to publish).
  params.quadtree.k = 8;
  params.mlsh.k = 8;
  params.riblt.k = 2 * (kSetSize + kOutliers);
  return params;
}

PointSet Canonical() {
  workload::CloudSpec spec;
  spec.universe = Ctx().universe;
  spec.n = kSetSize;
  spec.shape = workload::CloudShape::kClusters;
  Rng rng(1991);
  return workload::GenerateCloud(spec, &rng);
}

PointSet DriftedReplica(const PointSet& base, uint64_t seed) {
  const Universe universe = Ctx().universe;
  Rng rng(seed);
  PointSet replica;
  replica.reserve(base.size());
  for (const Point& p : base) {
    replica.push_back(workload::PerturbPoint(
        p, universe, workload::NoiseKind::kGaussian, kNoise, &rng));
  }
  for (size_t i = 0; i < kOutliers; ++i) {
    Point fresh(universe.d);
    for (int j = 0; j < universe.d; ++j) {
      fresh[j] = static_cast<int64_t>(rng.Below(universe.delta));
    }
    replica[rng.Below(replica.size())] = std::move(fresh);
  }
  return replica;
}

/// Client i always gets the same replica and protocol, so the in-process
/// reference result is computed once and reused across hosts and rows.
/// The caches are plain static maps: main() warms every entry up front
/// (WarmCaches) so the concurrent client threads only ever read them.
const PointSet& Replica(size_t i) {
  static std::map<size_t, PointSet> cache;
  auto it = cache.find(i);
  if (it == cache.end()) {
    const PointSet canonical = Canonical();
    it = cache.emplace(i, DriftedReplica(canonical, 40000 + 13 * i)).first;
  }
  return it->second;
}

const recon::ReconResult& Expected(size_t i) {
  static std::map<size_t, recon::ReconResult> cache;
  auto it = cache.find(i);
  if (it == cache.end()) {
    const PointSet canonical = Canonical();
    const std::string& protocol = Protocols()[i % Protocols().size()];
    const auto reconciler = recon::MakeReconciler(protocol, Ctx(), Params());
    transport::Channel channel;
    it = cache.emplace(i, reconciler->Run(Replica(i), canonical, &channel))
             .first;
  }
  return it->second;
}

void WarmCaches(size_t max_clients) {
  for (size_t i = 0; i < max_clients; ++i) {
    Replica(i);
    Expected(i);
  }
}

struct BurstOutcome {
  size_t matched = 0;  ///< Bit-identical to the driver ("ok" column).
  size_t decoded = 0;  ///< Protocol-level success ("decoded" column).
  size_t peak_active = 0;
  double wall_seconds = 0.0;
};

/// Fires `clients` concurrent mixed-protocol syncs at `port` and settles
/// the burst against the cached driver references.
BurstOutcome RunClients(uint16_t port, size_t clients) {
  std::vector<server::SyncOutcome> outcomes(clients);
  const auto burst_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      server::SyncClientOptions options;
      options.context = Ctx();
      options.params = Params();
      const server::SyncClient client(options);
      auto stream = net::TcpStream::Connect("127.0.0.1", port);
      if (stream == nullptr) return;
      outcomes[i] = client.Sync(
          stream.get(), Protocols()[i % Protocols().size()], Replica(i));
    });
  }
  for (std::thread& t : threads) t.join();

  BurstOutcome out;
  out.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - burst_start)
                         .count();
  for (size_t i = 0; i < clients; ++i) {
    if (outcomes[i].result.success) ++out.decoded;
    if (bench::MatchesDriver(outcomes[i], Expected(i))) ++out.matched;
  }
  return out;
}

/// Event-loop probe extras for the async host's rows (DESIGN.md §12):
/// loop-iteration and epoll-wait p99, pending-task depth p99, and the
/// timer-fire count, all from the host's shared shard instruments.
std::vector<std::pair<std::string, std::string>> LoopExtras(
    const obs::MetricsRegistry& registry) {
  std::vector<std::pair<std::string, std::string>> extras;
  const auto quantile_extra = [&](const char* metric, const char* key,
                                  double scale) {
    const std::optional<obs::HistogramSnapshot> snap =
        registry.SnapshotHistogram(metric);
    if (snap.has_value() && snap->count > 0) {
      extras.emplace_back(key, bench::Num(scale * snap->Quantile(0.99)));
    }
  };
  quantile_extra("rsr_loop_iteration_seconds", "loop_iter_p99_us", 1e6);
  quantile_extra("rsr_loop_epoll_wait_seconds", "epoll_wait_p99_us", 1e6);
  quantile_extra("rsr_loop_pending_tasks", "loop_pending_tasks_p99", 1.0);
  extras.emplace_back(
      "loop_timer_fires",
      std::to_string(registry.CounterValue("rsr_loop_timer_fires_total")));
  return extras;
}

void EmitRow(const std::string& host, size_t clients,
             const BurstOutcome& outcome,
             std::vector<std::pair<std::string, std::string>> extras) {
  const double wall_ms = 1e3 * outcome.wall_seconds;
  const double syncs_per_sec =
      static_cast<double>(clients) / outcome.wall_seconds;
  // "syncs_per_sec" / "wall_ms" are table columns here, so the JSON rows
  // already carry the standard field names; the extras add the latency
  // quantiles (and, on the async host, the event-loop probes).
  bench::RowExtras(std::move(extras));
  bench::Row({host, std::to_string(clients), std::to_string(outcome.matched),
              std::to_string(outcome.decoded), bench::Num(syncs_per_sec),
              bench::Num(wall_ms), std::to_string(outcome.peak_active),
              bench::Num(static_cast<double>(outcome.matched) /
                         static_cast<double>(clients))});
}

void RunThreadedBurst(const PointSet& canonical, size_t clients) {
  server::SyncServerOptions options;
  options.context = Ctx();
  options.params = Params();
  options.worker_threads = kThreadsPerHost;
  server::SyncServer server(canonical, options);
  if (!server.Start(net::TcpListener::Listen("127.0.0.1", 0))) {
    std::fprintf(stderr, "E17: failed to bind a loopback listener\n");
    return;
  }
  BurstOutcome outcome = RunClients(server.port(), clients);
  server.Stop();
  outcome.peak_active = server.metrics().peak_active_sessions;
  EmitRow("threaded-2w", clients, outcome,
          bench::LatencyExtras(server.metrics_registry()));
}

void RunAsyncBurst(const PointSet& canonical, size_t clients) {
  server::AsyncSyncServerOptions options;
  options.context = Ctx();
  options.params = Params();
  options.shards = kThreadsPerHost;
  server::AsyncSyncServer server(canonical, options);
  if (!server.Start(net::TcpListener::Listen("127.0.0.1", 0))) {
    std::fprintf(stderr, "E17: failed to bind a loopback listener\n");
    return;
  }
  BurstOutcome outcome = RunClients(server.port(), clients);
  server.Stop();
  outcome.peak_active = server.metrics().peak_active_sessions;
  std::vector<std::pair<std::string, std::string>> extras =
      bench::LatencyExtras(server.metrics_registry());
  for (auto& extra : LoopExtras(server.metrics_registry())) {
    extras.push_back(std::move(extra));
  }
  EmitRow("async-2s", clients, outcome, std::move(extras));
}

/// The 512-client burst needs ~1k fds plus headroom; lift the soft
/// RLIMIT_NOFILE toward the hard limit so the bench does not depend on
/// shell defaults.
void RaiseFdLimit() {
  struct rlimit limit;
  if (::getrlimit(RLIMIT_NOFILE, &limit) != 0) return;
  rlim_t wanted = 4096;
  if (limit.rlim_max != RLIM_INFINITY && wanted > limit.rlim_max) {
    wanted = limit.rlim_max;
  }
  if (limit.rlim_cur < wanted) {
    limit.rlim_cur = wanted;
    ::setrlimit(RLIMIT_NOFILE, &limit);
  }
}

}  // namespace
}  // namespace rsr

int main() {
  using namespace rsr;
  RaiseFdLimit();
  bench::Banner(
      "E17", "async vs threaded sync serving: concurrent TCP bursts",
      "at equal thread count (2 workers vs 2 shards) the threaded host "
      "serializes (peak_active <= 2) while the async host sustains the "
      "whole burst; every served result matches the in-process driver "
      "(match_driver = 1)");
  bench::Row({"host", "clients", "ok", "decoded", "syncs_per_sec",
              "wall_ms", "peak_active", "match_driver"});

  const PointSet canonical = Canonical();
  const std::vector<size_t> burst_sizes = {64, 256, 512};
  WarmCaches(*std::max_element(burst_sizes.begin(), burst_sizes.end()));
  for (const size_t clients : burst_sizes) {
    RunThreadedBurst(canonical, clients);
    RunAsyncBurst(canonical, clients);
  }
  return 0;
}
