// E11 — Extension comparison: quadtree vs. LSH/RIBLT protocol across
// dimensions.
//
// Fixed n = 192, k = 6, per-coordinate universe 2^8; sweep d. Expected
// shape: the quadtree's bytes grow with d (d-wide cell ids at every one of
// log Δ levels) while the LSH variant's level count is independent of
// d·log Δ — it becomes competitive as d grows; both keep EMD well below the
// un-reconciled baseline.

#include <cstdio>

#include "bench/bench_util.h"
#include "recon/registry.h"
#include "util/stats.h"

namespace rsr {
namespace {

void RunE11() {
  bench::Banner("E11", "quadtree vs LSH extension across d (n=192, "
                "delta=2^8, k=6, eps=1)",
                "LSH variant closes the gap / wins as d grows; both cut EMD "
                "vs no reconciliation");
  bench::Row({"d", "qt_B", "lsh_B", "qt_emd/before", "lsh_emd/before",
              "qt_succ", "lsh_succ"});

  const size_t n = 192, k = 6;
  const int trials = 6;

  for (int d : {2, 4, 8, 16, 32}) {
    SampleSet qt_ratio, lsh_ratio;
    size_t qt_bits = 0, lsh_bits = 0;
    int qt_succ = 0, lsh_succ = 0;
    for (int t = 0; t < trials; ++t) {
      const workload::Scenario scenario = workload::StandardScenario(
          n, d, int64_t{1} << 8, k, /*noise=*/1.0,
          /*seed=*/400 + static_cast<uint64_t>(t));
      const workload::ReplicaPair pair = scenario.Materialize();
      recon::ProtocolContext ctx;
      ctx.universe = scenario.universe;
      ctx.seed = 41 + static_cast<uint64_t>(t);

      recon::ProtocolParams pp;
      pp.k = k;

      recon::EvaluateOptions options;
      options.metric = Metric::kL2;
      const recon::Evaluation qt = EvaluateProtocol(
          "quadtree", ctx, pp, pair.alice, pair.bob, options);
      const recon::Evaluation lsh = EvaluateProtocol(
          "mlsh-riblt", ctx, pp, pair.alice, pair.bob, options);
      qt_bits = qt.comm_bits;
      lsh_bits = lsh.comm_bits;
      if (qt.success) {
        ++qt_succ;
        qt_ratio.Add(qt.emd_after / (qt.emd_before + 1e-9));
      }
      if (lsh.success) {
        ++lsh_succ;
        lsh_ratio.Add(lsh.emd_after / (lsh.emd_before + 1e-9));
      }
    }
    bench::Row({std::to_string(d), bench::Bits(qt_bits),
                bench::Bits(lsh_bits),
                qt_ratio.count() ? bench::Num(qt_ratio.Mean()) : "n/a",
                lsh_ratio.count() ? bench::Num(lsh_ratio.Mean()) : "n/a",
                bench::Num(static_cast<double>(qt_succ) / trials),
                bench::Num(static_cast<double>(lsh_succ) / trials)});
  }
  std::printf("\n");
}

}  // namespace
}  // namespace rsr

int main() {
  rsr::RunE11();
  return 0;
}
