// E2 — Quality vs. communication budget.
//
// Fixed instance (n = 256, k = 8); sweep the IBLT sizing headroom and the
// decode budget, which trade communication for decode success / finer level
// selection. Report the achieved EMD(S_A, S'_B) normalised by the trimmed
// optimum EMD_k. Expected shape: the ratio falls quickly as budget grows and
// saturates (diminishing returns) near a small constant multiple of EMD_k.

#include <cstdio>

#include "bench/bench_util.h"
#include "recon/registry.h"
#include "util/stats.h"

namespace rsr {
namespace {

void RunE2() {
  bench::Banner("E2", "EMD quality vs communication (n=256, d=2, k=8)",
                "EMD/EMD_k drops toward O(1) as budget grows, then "
                "saturates");
  bench::Row({"headroom", "budgetx", "bytes", "emd_ratio", "succ_rate",
              "level_med"});

  const size_t n = 256, k = 8;
  const int trials = 10;

  for (double headroom : {0.7, 0.9, 1.1, 1.35, 1.8, 2.5}) {
    for (size_t budget_factor : {2, 4, 8}) {
      SampleSet ratios, levels;
      size_t bytes_bits = 0;
      int successes = 0;
      for (int t = 0; t < trials; ++t) {
        const workload::Scenario scenario = workload::StandardScenario(
            n, 2, int64_t{1} << 16, k, /*noise=*/2.0,
            /*seed=*/100 + static_cast<uint64_t>(t));
        const workload::ReplicaPair pair = scenario.Materialize();
        recon::ProtocolContext ctx;
        ctx.universe = scenario.universe;
        ctx.seed = 7 + static_cast<uint64_t>(t);

        recon::ProtocolParams pp;
        pp.quadtree.k = k;
        pp.quadtree.headroom = headroom;
        pp.quadtree.decode_budget = budget_factor * k;
        recon::EvaluateOptions options;
        options.metric = scenario.metric;
        options.k = k;
        const recon::Evaluation eval = EvaluateProtocol(
            "quadtree", ctx, pp, pair.alice, pair.bob, options);
        bytes_bits = eval.comm_bits;
        if (eval.success) {
          ++successes;
          ratios.Add(eval.ratio_vs_emdk);
          levels.Add(eval.chosen_level);
        }
      }
      bench::Row({bench::Num(headroom), std::to_string(budget_factor),
                  bench::Bits(bytes_bits),
                  ratios.count() ? bench::Num(ratios.Mean()) : "n/a",
                  bench::Num(static_cast<double>(successes) / trials),
                  levels.count() ? bench::Num(levels.Median()) : "n/a"});
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace rsr

int main() {
  rsr::RunE2();
  return 0;
}
