// E5 — Scaling with dimension d (the O(d) approximation factor).
//
// Fixed n = 256, k = 8, per-coordinate universe 2^10; sweep d. Expected
// shape: communication grows ~linearly in d (the packed cell payload), and
// the quality ratio EMD / EMD_k grows at most ~linearly in d — the O(d)
// approximation the SIGMOD 2014 protocol guarantees.

#include <cstdio>

#include "bench/bench_util.h"
#include "recon/registry.h"
#include "util/stats.h"

namespace rsr {
namespace {

void RunE5() {
  bench::Banner("E5", "dimension sweep (n=256, delta=2^10, k=8, eps=1)",
                "bytes ~ linear in d; EMD/EMD_k grows at most ~ d");
  bench::Row({"d", "bytes", "emd_ratio_mean", "emd_ratio_p90", "succ_rate",
              "level_med"});

  const size_t n = 256, k = 8;
  const int trials = 10;

  for (int d : {1, 2, 4, 8, 16}) {
    SampleSet ratios, levels;
    size_t bits = 0;
    int successes = 0;
    for (int t = 0; t < trials; ++t) {
      const workload::Scenario scenario = workload::StandardScenario(
          n, d, int64_t{1} << 10, k, /*noise=*/1.0,
          /*seed=*/200 + static_cast<uint64_t>(t));
      const workload::ReplicaPair pair = scenario.Materialize();
      recon::ProtocolContext ctx;
      ctx.universe = scenario.universe;
      ctx.seed = 23 + static_cast<uint64_t>(t);

      recon::ProtocolParams pp;
      pp.k = k;
      recon::EvaluateOptions options;
      options.metric = Metric::kL2;
      options.k = k;
      const recon::Evaluation eval = EvaluateProtocol(
          "quadtree", ctx, pp, pair.alice, pair.bob, options);
      bits = eval.comm_bits;
      if (eval.success) {
        ++successes;
        ratios.Add(eval.ratio_vs_emdk);
        levels.Add(eval.chosen_level);
      }
    }
    bench::Row({std::to_string(d), bench::Bits(bits),
                ratios.count() ? bench::Num(ratios.Mean()) : "n/a",
                ratios.count() ? bench::Num(ratios.Percentile(90)) : "n/a",
                bench::Num(static_cast<double>(successes) / trials),
                levels.count() ? bench::Num(levels.Median()) : "n/a"});
  }
  std::printf("\n");
}

}  // namespace
}  // namespace rsr

int main() {
  rsr::RunE5();
  return 0;
}
