// E9 — Strata difference-estimator accuracy (substrate validation).
//
// Two parties share 4000 keys; plant a true difference D and report the
// distribution of estimate / D over 50 trials. Expected shape: median near
// 1.0, p10–p90 within roughly a factor 2 for all D large enough to reach
// a decodable stratum; tiny D is exact (every stratum decodes).

#include <cstdio>

#include "bench/bench_util.h"
#include "iblt/strata.h"
#include "util/random.h"
#include "util/stats.h"

namespace rsr {
namespace {

void RunE9() {
  bench::Banner("E9", "strata estimator accuracy (4000 shared keys, "
                "50 trials)",
                "median est/true ~ 1; p10-p90 within ~2x; exact for tiny "
                "differences");
  bench::Row({"true_diff", "median", "p10", "p90", "exact_frac"});

  const int trials = 50;
  for (uint64_t true_diff : {4, 16, 64, 256, 1024, 4096, 16384}) {
    SampleSet ratios;
    int exact = 0;
    for (int t = 0; t < trials; ++t) {
      StrataConfig config;
      config.num_strata = 20;
      config.cells_per_stratum = 32;
      config.seed = static_cast<uint64_t>(t) * 104729 + 7;
      StrataEstimator a(config), b(config);
      Rng rng(config.seed ^ 0x5eed);
      for (int i = 0; i < 4000; ++i) {
        const uint64_t k = rng.Next64();
        a.Insert(k);
        b.Insert(k);
      }
      for (uint64_t i = 0; i < true_diff / 2; ++i) {
        a.Insert(rng.Next64());
        b.Insert(rng.Next64());
      }
      const uint64_t est = a.EstimateDifference(b);
      ratios.Add(static_cast<double>(est) /
                 static_cast<double>(true_diff));
      if (est == true_diff) ++exact;
    }
    bench::Row({std::to_string(true_diff), bench::Num(ratios.Median()),
                bench::Num(ratios.Percentile(10)),
                bench::Num(ratios.Percentile(90)),
                bench::Num(static_cast<double>(exact) / trials)});
  }
  std::printf("\n");
}

}  // namespace
}  // namespace rsr

int main() {
  rsr::RunE9();
  return 0;
}
