// E4 — Scaling with set size n.
//
// Fixed k = 16 and noise ε = 2; sweep n. Expected shape: robust protocol
// bytes are essentially flat in n (only the count field width grows),
// full transfer is linear, exact reconciliation is linear (noisy difference
// ~ 2n). Wall-clock encode time for the quadtree is O(n log Δ).

#include <cstdio>

#include "bench/bench_util.h"
#include "recon/registry.h"

namespace rsr {
namespace {

void RunE4() {
  bench::Banner("E4", "scaling in n (d=2, delta=2^20, k=16, eps=2)",
                "robust bytes ~flat in n; exact and full transfer linear; "
                "robust time linear");
  bench::Row({"n", "quadtree_B", "adaptive_B", "exact_B", "full_B",
              "qt_secs"});

  const size_t k = 16;
  recon::EvaluateOptions options;
  options.measure_quality = false;

  for (size_t n : {256, 512, 1024, 2048, 4096, 8192, 16384, 32768}) {
    const workload::Scenario scenario = workload::StandardScenario(
        n, 2, int64_t{1} << 20, k, /*noise=*/2.0, /*seed=*/5);
    const workload::ReplicaPair pair = scenario.Materialize();
    recon::ProtocolContext ctx;
    ctx.universe = scenario.universe;
    ctx.seed = 17;

    recon::ProtocolParams pp;
    pp.k = k;
    const recon::Evaluation quadtree = EvaluateProtocol(
        "quadtree", ctx, pp, pair.alice, pair.bob, options);
    const recon::Evaluation adaptive = EvaluateProtocol(
        "quadtree-adaptive", ctx, pp, pair.alice, pair.bob, options);
    const recon::Evaluation exact = EvaluateProtocol(
        "exact-iblt", ctx, pp, pair.alice, pair.bob, options);
    const recon::Evaluation full = EvaluateProtocol(
        "full-transfer", ctx, pp, pair.alice, pair.bob, options);

    bench::Row({std::to_string(n), bench::Bits(quadtree.comm_bits),
                bench::Bits(adaptive.comm_bits), bench::Bits(exact.comm_bits),
                bench::Bits(full.comm_bits),
                bench::Num(quadtree.wall_seconds, 3)});
  }
  std::printf("\n");
}

}  // namespace
}  // namespace rsr

int main() {
  rsr::RunE4();
  return 0;
}
