// E13 — Gap Guarantee model (extension): communication and precision.
//
// Sweep (a) the number of planted far points k at a fixed generous gap and
// (b) the gap ratio r2/(r1·d) at fixed k. Expected shape: bytes grow with k
// but stay far below full transfer; every run satisfies the coverage
// guarantee; the number of transmitted points approaches the planted k as
// the gap grows (fewer ρ̂-straddlers).

#include <cstdio>

#include "bench/bench_util.h"
#include "gaprecon/gap_recon.h"
#include "util/stats.h"
#include "workload/generator.h"

namespace rsr {
namespace {

void RunRow(size_t n, size_t far, double r2, const char* label) {
  const int trials = 5;
  SampleSet sent;
  size_t bits = 0;
  int guarantee_ok = 0, successes = 0;
  for (int t = 0; t < trials; ++t) {
    workload::CloudSpec cloud;
    cloud.universe = MakeUniverse(int64_t{1} << 20, 2);
    cloud.n = n;
    workload::PerturbationSpec spec;
    spec.noise = workload::NoiseKind::kUniformBox;
    spec.noise_scale = 2.0;
    spec.outliers = far;
    const workload::ReplicaPair pair = workload::MakeReplicaPair(
        cloud, spec, 500 + static_cast<uint64_t>(t) * 17 + far);

    recon::ProtocolContext ctx;
    ctx.universe = cloud.universe;
    ctx.seed = 47 + static_cast<uint64_t>(t);
    gaprecon::GapParams params;
    params.r1 = 2.0;
    params.r2 = r2;
    recon::ProtocolParams pp;
    pp.gap = params;
    const std::unique_ptr<recon::Reconciler> protocol =
        recon::MakeReconciler("gap-lattice", ctx, pp);
    transport::Channel channel;
    const recon::ReconResult result =
        protocol->Run(pair.alice, pair.bob, &channel);
    bits = channel.stats().total_bits;
    if (result.success) {
      ++successes;
      sent.Add(static_cast<double>(result.transmitted));
      if (gaprecon::SatisfiesGapGuarantee(pair.alice, result.bob_final,
                                          params, 2)) {
        ++guarantee_ok;
      }
    }
  }
  const size_t full_bits = n * 2 * 20;
  bench::Row({label, std::to_string(far), bench::Num(r2 / (2.0 * 2.0)),
              bench::Bits(bits), bench::Bits(full_bits),
              sent.count() ? bench::Num(sent.Mean()) : "n/a",
              bench::Num(static_cast<double>(guarantee_ok) / trials),
              bench::Num(static_cast<double>(successes) / trials)});
}

void RunE13() {
  bench::Banner("E13", "gap-guarantee model (n=4096, d=2, delta=2^20, "
                "r1=2, 5 trials)",
                "bytes << full transfer and grow with k; guarantee holds in "
                "every run; transmitted -> k as the gap widens");
  bench::Row({"sweep", "far_k", "gap_ratio", "bytes", "full_B", "sent_mean",
              "guarantee", "success"});
  // (a) k sweep at a generous gap.
  for (size_t far : {0, 4, 16, 64, 256}) {
    RunRow(4096, far, /*r2=*/1024.0, "k");
  }
  // (b) gap sweep at fixed k.
  for (double r2 : {16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    RunRow(4096, 16, r2, "gap");
  }
  std::printf("\n");
}

}  // namespace
}  // namespace rsr

int main() {
  rsr::RunE13();
  return 0;
}
