// E12 — Microbenchmark suite (google-benchmark): throughput of the
// building blocks and the end-to-end protocols.
//
// Expected shape: IBLT insert O(q) per key, decode O(m); grid hashing O(d)
// per (point, level); exact EMD O(n^3) vs greedy O(n^2 log n); quadtree
// encode O(n log Δ).

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "geometry/emd.h"
#include "geometry/grid.h"
#include "iblt/iblt.h"
#include "iblt/sizing.h"
#include "recon/registry.h"
#include "riblt/riblt.h"
#include "util/random.h"
#include "workload/scenario.h"

namespace rsr {
namespace {

void BM_IbltInsert(benchmark::State& state) {
  IbltConfig config;
  config.cells = 1024;
  config.q = static_cast<int>(state.range(0));
  config.seed = 1;
  Iblt table(config);
  Rng rng(2);
  for (auto _ : state) {
    table.Insert(rng.Next64(), {});
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IbltInsert)->Arg(3)->Arg(4)->Arg(5);

void BM_IbltDecode(benchmark::State& state) {
  const size_t entries = static_cast<size_t>(state.range(0));
  IbltConfig config;
  config.cells = RecommendedCells(entries, 4);
  config.q = 4;
  config.seed = 3;
  Iblt table(config);
  Rng rng(4);
  for (size_t i = 0; i < entries; ++i) table.Insert(rng.Next64(), {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Decode());
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * entries));
}
BENCHMARK(BM_IbltDecode)->Arg(64)->Arg(512)->Arg(4096);

void BM_RibltDecode(benchmark::State& state) {
  const size_t entries = static_cast<size_t>(state.range(0));
  RibltConfig config;
  config.cells = entries * 8;
  config.q = 3;
  config.universe = MakeUniverse(1 << 16, 2);
  config.max_entries = entries * 2;
  config.seed = 5;
  Riblt table(config);
  Rng rng(6);
  for (size_t i = 0; i < entries; ++i) {
    table.Insert(rng.Next64(), {rng.Uniform(0, (1 << 16) - 1),
                                rng.Uniform(0, (1 << 16) - 1)});
  }
  Rng round_rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Decode(&round_rng));
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * entries));
}
BENCHMARK(BM_RibltDecode)->Arg(64)->Arg(512);

void BM_GridHistogram(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Universe u = MakeUniverse(1 << 20, 2);
  const ShiftedGrid grid(u, 8);
  Rng rng(9);
  PointSet points;
  for (size_t i = 0; i < n; ++i) {
    points.push_back({rng.Uniform(0, (1 << 20) - 1),
                      rng.Uniform(0, (1 << 20) - 1)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildCellHistogram(grid, points, 10));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_GridHistogram)->Arg(1024)->Arg(16384);

void BM_ExactEmd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(10);
  PointSet x, y;
  for (size_t i = 0; i < n; ++i) {
    x.push_back({rng.Uniform(0, 1 << 16), rng.Uniform(0, 1 << 16)});
    y.push_back({rng.Uniform(0, 1 << 16), rng.Uniform(0, 1 << 16)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExactEmd(x, y, Metric::kL2));
  }
}
BENCHMARK(BM_ExactEmd)->Arg(32)->Arg(128)->Arg(256);

void BM_GreedyEmd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(11);
  PointSet x, y;
  for (size_t i = 0; i < n; ++i) {
    x.push_back({rng.Uniform(0, 1 << 16), rng.Uniform(0, 1 << 16)});
    y.push_back({rng.Uniform(0, 1 << 16), rng.Uniform(0, 1 << 16)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyEmdUpperBound(x, y, Metric::kL2));
  }
}
BENCHMARK(BM_GreedyEmd)->Arg(128)->Arg(512);

void BM_QuadtreeProtocol(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const workload::Scenario scenario =
      workload::StandardScenario(n, 2, int64_t{1} << 20, 16, 2.0, 12);
  const workload::ReplicaPair pair = scenario.Materialize();
  recon::ProtocolContext ctx;
  ctx.universe = scenario.universe;
  ctx.seed = 13;
  recon::ProtocolParams pp;
  pp.k = 16;
  const std::unique_ptr<recon::Reconciler> protocol =
      recon::MakeReconciler("quadtree", ctx, pp);
  for (auto _ : state) {
    transport::Channel channel;
    benchmark::DoNotOptimize(protocol->Run(pair.alice, pair.bob, &channel));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_QuadtreeProtocol)->Arg(1024)->Arg(8192);

/// End-to-end sync throughput summary, emitted as BENCH_E12.json with the
/// standard "wall_ms" / "syncs_per_sec" fields so E12 rows are
/// machine-comparable with the serving-layer load benches (E16/E17)
/// across PRs. The google-benchmark microbenches below keep their own
/// reporter.
void EmitSyncThroughputSummary() {
  bench::Banner("E12", "end-to-end sync throughput (in-process driver)",
                "syncs/sec per protocol on the standard n=1024 scenario");
  bench::Row({"protocol", "syncs", "syncs_per_sec", "wall_ms"});

  const workload::Scenario scenario =
      workload::StandardScenario(1024, 2, int64_t{1} << 20, 16, 2.0, 12);
  const workload::ReplicaPair pair = scenario.Materialize();
  recon::ProtocolContext ctx;
  ctx.universe = scenario.universe;
  ctx.seed = 13;
  recon::ProtocolParams params;
  params.k = 16;

  constexpr size_t kSyncs = 24;
  for (const char* name :
       {"quadtree", "exact-iblt", "full-transfer", "riblt-oneshot"}) {
    const std::unique_ptr<recon::Reconciler> protocol =
        recon::MakeReconciler(name, ctx, params);
    const auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < kSyncs; ++i) {
      transport::Channel channel;
      protocol->Run(pair.alice, pair.bob, &channel);
    }
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    // "syncs_per_sec" / "wall_ms" are table columns here, so the JSON
    // rows already carry the standard field names — no RowExtras needed.
    bench::Row({name, std::to_string(kSyncs),
                bench::Num(static_cast<double>(kSyncs) / wall_seconds),
                bench::Num(1e3 * wall_seconds)});
  }
}

}  // namespace
}  // namespace rsr

int main(int argc, char** argv) {
  // Parse flags first: --help or a bad flag should exit before the
  // summary does real protocol work and rewrites BENCH_E12.json.
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  rsr::EmitSyncThroughputSummary();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
