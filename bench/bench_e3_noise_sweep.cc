// E3 — The headline robustness experiment: noise magnitude sweep.
//
// Fixed k = 8 outliers, n = 2048; sweep the per-point noise scale ε from 0
// upward and report each protocol's measured bytes. Expected shape: at any
// ε > 0 exact reconciliation jumps to Θ(n)-scale cost (every point differs
// bit-for-bit), while the robust quadtree's cost does not depend on ε at
// all — only the level it decodes at moves with the noise scale.

#include <cstdio>

#include "bench/bench_util.h"
#include "recon/registry.h"

namespace rsr {
namespace {

void RunE3() {
  bench::Banner("E3", "noise sweep (n=2048, d=2, delta=2^20, k=8)",
                "exact cost explodes at any eps>0; robust cost flat in eps; "
                "chosen level tracks eps");
  bench::Row({"eps", "quadtree_B", "adaptive_B", "exact_B", "full_B",
              "qt_level", "ad_level"});

  const size_t n = 2048, k = 8;
  recon::EvaluateOptions options;
  options.measure_quality = false;

  for (double eps : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    const workload::Scenario scenario = workload::StandardScenario(
        n, 2, int64_t{1} << 20, k, eps, /*seed=*/3);
    const workload::ReplicaPair pair = scenario.Materialize();
    recon::ProtocolContext ctx;
    ctx.universe = scenario.universe;
    ctx.seed = 11;

    recon::ProtocolParams pp;
    pp.k = k;
    const recon::Evaluation quadtree = EvaluateProtocol(
        "quadtree", ctx, pp, pair.alice, pair.bob, options);
    const recon::Evaluation adaptive = EvaluateProtocol(
        "quadtree-adaptive", ctx, pp, pair.alice, pair.bob, options);
    const recon::Evaluation exact = EvaluateProtocol(
        "exact-iblt", ctx, pp, pair.alice, pair.bob, options);
    const recon::Evaluation full = EvaluateProtocol(
        "full-transfer", ctx, pp, pair.alice, pair.bob, options);

    bench::Row({bench::Num(eps), bench::Bits(quadtree.comm_bits),
                bench::Bits(adaptive.comm_bits), bench::Bits(exact.comm_bits),
                bench::Bits(full.comm_bits),
                std::to_string(quadtree.chosen_level),
                std::to_string(adaptive.chosen_level)});
  }
  std::printf("\n");
}

}  // namespace
}  // namespace rsr

int main() {
  rsr::RunE3();
  return 0;
}
