// E18 — Cached vs rebuilt canonical sketches under churn.
//
// The paper's sketches are difference-proportional, yet a server that
// rebuilds Bob's sketches from the canonical set on every connection pays
// set-proportional work per sync. This bench measures exactly that term:
// the same quadtree sync burst is served twice, once by a SyncServer
// serving from its SketchStore's cached sketches (serve_from_cache = true,
// the default) and once by the rebuild baseline (= false), at 8 and 32
// concurrent clients, while the canonical set absorbs a churn batch of
// 0% / 1% / 10% of the set before every sync (server::ApplyUpdate, i.e.
// incremental Insert/Erase maintenance on the cached side).
//
// Clients here are replayers: each pre-encodes its Alice "qt-levels" frame
// once (it depends only on the client's replica) and replays it per sync,
// so the measured work is the server's, not the client's sketch building —
// this is a server-cost harness, unlike E16/E17 which bill both ends.
//
// Fidelity under churn is generation-exact: the "@accept" frame stamps the
// canonical generation the session was pinned to, every generation's
// snapshot is recorded at ApplyUpdate time, and each served result is
// compared bit-for-bit against recon::DrivePair on (replica, that exact
// generation's set). `ok` counts driver-matching syncs, `decoded`
// protocol-level successes, match_driver = ok / syncs and must be 1 in
// every row.
//
// Expected shape: cached serving beats rebuild serving at every churn
// level, by >= 2x at 32 clients under low churn (0% / 1%). The margin
// narrows as churn rises — a churn batch costs O(batch · levels) sketch
// maintenance, so at 10%-of-the-set-per-sync the maintenance approaches a
// rebuild's O(n · levels) — which is the honest crossover of the cached
// design, not a regression.

#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "net/frame.h"
#include "net/tcp.h"
#include "recon/driver.h"
#include "server/handshake.h"
#include "server/sync_server.h"
#include "util/stats.h"
#include "workload/churn.h"
#include "workload/generator.h"

namespace rsr {
namespace {

constexpr size_t kSetSize = 2048;
constexpr size_t kOutliers = 4;
constexpr double kNoise = 0.5;
constexpr size_t kRounds = 3;  // sequential syncs per client

recon::ProtocolContext Ctx() {
  recon::ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 14, 2);
  ctx.seed = 1818;
  return ctx;
}

recon::ProtocolParams Params() {
  recon::ProtocolParams params;
  params.quadtree.k = 8;
  return params;
}

PointSet Canonical() {
  workload::CloudSpec spec;
  spec.universe = Ctx().universe;
  spec.n = kSetSize;
  spec.shape = workload::CloudShape::kClusters;
  Rng rng(2929);
  return workload::GenerateCloud(spec, &rng);
}

PointSet DriftedReplica(const PointSet& base, uint64_t seed) {
  const Universe universe = Ctx().universe;
  Rng rng(seed);
  PointSet replica;
  replica.reserve(base.size());
  for (const Point& p : base) {
    replica.push_back(workload::PerturbPoint(
        p, universe, workload::NoiseKind::kGaussian, kNoise, &rng));
  }
  for (size_t i = 0; i < kOutliers; ++i) {
    Point fresh(universe.d);
    for (int j = 0; j < universe.d; ++j) {
      fresh[j] = static_cast<int64_t>(rng.Below(universe.delta));
    }
    replica[rng.Below(replica.size())] = std::move(fresh);
  }
  return replica;
}

/// One replayed sync: @hello, read @accept (generation), replay the canned
/// Alice frame, read @result. Packaged as a server::SyncOutcome so the
/// result settles through the same bench::MatchesDriver as E16/E17.
struct ReplayedSync {
  server::SyncOutcome outcome;
};

ReplayedSync ReplaySync(uint16_t port, const transport::Message& alice_frame,
                        size_t replica_size) {
  ReplayedSync sync;
  auto stream = net::TcpStream::Connect("127.0.0.1", port);
  if (stream == nullptr) return sync;
  net::FramedStream framed(stream.get());
  server::HelloFrame hello;
  hello.protocol = "quadtree";
  hello.client_set_size = replica_size;
  hello.want_result_set = true;
  if (!framed.Send(EncodeHello(hello))) return sync;
  transport::Message incoming;
  if (framed.Receive(&incoming) != net::FramedStream::RecvStatus::kMessage) {
    return sync;
  }
  server::AcceptFrame accept;
  if (!DecodeAccept(incoming, &accept)) return sync;
  sync.outcome.handshake_ok = true;
  sync.outcome.server_generation = accept.generation;
  if (!framed.Send(alice_frame)) {
    sync.outcome.handshake_ok = false;
    return sync;
  }
  if (framed.Receive(&incoming) != net::FramedStream::RecvStatus::kMessage) {
    sync.outcome.handshake_ok = false;
    return sync;
  }
  server::ResultFrame result;
  if (!DecodeResult(incoming, Ctx().universe, &result)) {
    sync.outcome.handshake_ok = false;
    return sync;
  }
  sync.outcome.result = std::move(result.result);
  stream->Close();
  return sync;
}

/// Shared churn state of one burst: the mutating canonical set plus every
/// generation's snapshot, recorded for exact post-burst verification.
struct ChurnState {
  std::mutex mu;
  std::map<uint64_t, std::shared_ptr<const server::SketchSnapshot>> gens;
  std::shared_ptr<const server::SketchSnapshot> latest;
  workload::ChurnSpec spec;
  Rng rng{0};
};

void ApplyOneChurnBatch(server::SyncServer* server, ChurnState* state) {
  std::lock_guard<std::mutex> lock(state->mu);
  const workload::ChurnBatch batch = workload::MakeChurnBatch(
      state->latest->points(), Ctx().universe, state->spec, &state->rng);
  state->latest = server->ApplyUpdate(batch.inserts, batch.erases);
  state->gens[state->latest->generation()] = state->latest;
}

void RunBurst(const PointSet& canonical,
              const std::vector<transport::Message>& alice_frames,
              const std::vector<PointSet>& replicas, bool cached,
              size_t clients, double churn) {
  server::SyncServerOptions options;
  options.context = Ctx();
  options.params = Params();
  options.worker_threads = 8;
  options.serve_from_cache = cached;
  server::SyncServer server(canonical, options);
  if (!server.Start(net::TcpListener::Listen("127.0.0.1", 0))) {
    std::fprintf(stderr, "E18: failed to bind a loopback listener\n");
    return;
  }

  ChurnState state;
  state.latest = server.snapshot();
  state.gens[state.latest->generation()] = state.latest;
  state.spec.fraction = churn;
  state.rng = Rng(7000 + clients + static_cast<uint64_t>(1e4 * churn) +
                  (cached ? 1 : 0));

  std::vector<std::vector<ReplayedSync>> syncs(
      clients, std::vector<ReplayedSync>(kRounds));
  const auto burst_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      for (size_t round = 0; round < kRounds; ++round) {
        if (churn > 0.0) ApplyOneChurnBatch(&server, &state);
        syncs[i][round] =
            ReplaySync(server.port(), alice_frames[i], replicas[i].size());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double burst_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    burst_start)
          .count();
  server.Stop();

  // Settle every sync against the in-process driver on the exact canonical
  // generation it was served from. One driver run per (client, generation)
  // pair; with churn off all rounds share generation 0.
  std::map<std::pair<size_t, uint64_t>, recon::ReconResult> expected_cache;
  const size_t total = clients * kRounds;
  size_t matched = 0, decoded = 0;
  for (size_t i = 0; i < clients; ++i) {
    for (size_t round = 0; round < kRounds; ++round) {
      const ReplayedSync& sync = syncs[i][round];
      if (sync.outcome.result.success) ++decoded;
      if (!sync.outcome.handshake_ok) continue;
      const auto gen_it = state.gens.find(sync.outcome.server_generation);
      if (gen_it == state.gens.end()) continue;  // impossible by design
      const auto key = std::make_pair(i, sync.outcome.server_generation);
      auto it = expected_cache.find(key);
      if (it == expected_cache.end()) {
        const auto reconciler =
            recon::MakeReconciler("quadtree", Ctx(), Params());
        transport::Channel channel;
        it = expected_cache
                 .emplace(key, reconciler->Run(replicas[i],
                                               gen_it->second->points(),
                                               &channel))
                 .first;
      }
      if (bench::MatchesDriver(sync.outcome, it->second)) ++matched;
    }
  }

  bench::RowExtras({{"wall_ms", bench::Num(1e3 * burst_seconds)}});
  bench::Row({cached ? "cached" : "rebuild", std::to_string(clients),
              bench::Num(100.0 * churn), std::to_string(matched),
              std::to_string(decoded),
              bench::Num(static_cast<double>(total) / burst_seconds),
              bench::Num(static_cast<double>(matched) /
                         static_cast<double>(total))});
}

}  // namespace
}  // namespace rsr

int main() {
  using namespace rsr;
  bench::Banner(
      "E18", "canonical sketch store: cached vs rebuilt serving under churn",
      "cached quadtree serving beats the rebuild baseline at every churn "
      "level, >= 2x at 32 clients under low churn; every served result "
      "matches the driver on its pinned generation (match_driver = 1)");
  bench::Row({"mode", "clients", "churn_pct", "ok", "decoded",
              "syncs_per_sec", "match_driver"});

  const PointSet canonical = Canonical();
  constexpr size_t kMaxClients = 32;
  std::vector<PointSet> replicas(kMaxClients);
  std::vector<transport::Message> alice_frames;
  alice_frames.reserve(kMaxClients);
  for (size_t i = 0; i < kMaxClients; ++i) {
    replicas[i] = DriftedReplica(canonical, 5000 + 17 * i);
    // Alice's one-shot frame depends only on her replica; build it once.
    const auto reconciler = recon::MakeReconciler("quadtree", Ctx(), Params());
    auto alice = reconciler->MakeAliceSession(replicas[i]);
    std::vector<transport::Message> opening = alice->Start();
    alice_frames.push_back(std::move(opening.at(0)));
  }

  for (const bool cached : {false, true}) {
    for (const size_t clients : {size_t{8}, size_t{32}}) {
      for (const double churn : {0.0, 0.01, 0.10}) {
        RunBurst(canonical, alice_frames, replicas, cached, clients, churn);
      }
    }
  }
  return 0;
}
