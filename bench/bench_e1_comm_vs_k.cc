// E1 — Communication vs. outlier budget k.
//
// Fixed workload (n = 4096 clustered points in [2^20]^2, Gaussian noise
// ε = 2, k planted outliers); sweep k and report the measured bytes of each
// protocol. Expected shape: robust protocols grow linearly in k and stay far
// below full transfer; exact reconciliation is dominated by the ~2n noisy
// difference and is flat at a huge value.

#include <cstdio>

#include "bench/bench_util.h"
#include "recon/registry.h"

namespace rsr {
namespace {

void RunE1() {
  bench::Banner("E1", "communication vs k (n=4096, d=2, delta=2^20, eps=2)",
                "robust ~ O(k log Delta) << exact ~ O(n log Delta) "
                "<= full transfer");
  bench::Row({"k", "quadtree_B", "adaptive_B", "exact_B", "full_B",
              "qt_level"});

  const size_t n = 4096;
  recon::EvaluateOptions options;
  options.measure_quality = false;

  for (size_t k : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const workload::Scenario scenario = workload::StandardScenario(
        n, 2, int64_t{1} << 20, k, /*noise=*/2.0, /*seed=*/1);
    const workload::ReplicaPair pair = scenario.Materialize();
    recon::ProtocolContext ctx;
    ctx.universe = scenario.universe;
    ctx.seed = 42;

    recon::ProtocolParams pp;
    pp.k = k;
    const recon::Evaluation quadtree = EvaluateProtocol(
        "quadtree", ctx, pp, pair.alice, pair.bob, options);
    const recon::Evaluation adaptive = EvaluateProtocol(
        "quadtree-adaptive", ctx, pp, pair.alice, pair.bob, options);
    const recon::Evaluation exact = EvaluateProtocol(
        "exact-iblt", ctx, pp, pair.alice, pair.bob, options);
    const recon::Evaluation full = EvaluateProtocol(
        "full-transfer", ctx, pp, pair.alice, pair.bob, options);

    bench::Row({std::to_string(k), bench::Bits(quadtree.comm_bits),
                bench::Bits(adaptive.comm_bits), bench::Bits(exact.comm_bits),
                bench::Bits(full.comm_bits),
                std::to_string(quadtree.chosen_level)});
  }
  std::printf("\n");
}

}  // namespace
}  // namespace rsr

int main() {
  rsr::RunE1();
  return 0;
}
