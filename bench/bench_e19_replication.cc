// E19 — Replicated canonical set under churn: changelog tail vs protocol
// repair.
//
// Three replicas of one canonical set (DESIGN.md §10): node 0 is the
// writer absorbing churn batches, nodes 1 and 2 are followers pulling via
// anti-entropy rounds over in-process pipes. The bench drives the mesh
// through the regimes the subsystem distinguishes:
//
//   churn-tail    small steady churn, followers inside the writer's ring —
//                 every round is a cheap changelog tail (cost ∝ delta).
//   burst-repair  a write burst larger than the ring: the followers fall
//                 off the log and must repair by full pairwise
//                 reconciliation, self-hosting the protocols this repo
//                 reproduces ("@pull", Bob run locally by the puller).
//   quiesce       no more writes; rounds (including follower-to-follower)
//                 until the mesh reaches EXACT zero set divergence.
//   bytes         a controlled pair: the SAME small delta (kCompareDelta
//                 batches) caught up once by tail and once by protocol
//                 repair (ring capacity 1 forces it), so the row pair
//                 quantifies why the log is the cheap path.
//   serve         ordinary clients sync against every replica; each served
//                 result is compared bit-for-bit against the in-process
//                 driver on that replica's set (match_driver), and the
//                 "@accept" replica_seq gives the replica's staleness in
//                 mutation batches behind the writer.
//
// Expected shape: the mesh converges to divergence 0 at quiescence with
// both catch-up paths exercised; for the same small delta the tail bytes
// are below the repair bytes; every client row has match_driver = 1.
//
// CI asserts exactly those four claims on BENCH_E19.json, plus — via the
// observability flags below — that a meshmon scrape of the held mesh
// reports convergence_watermark == writer seq.
//
// Flags (all optional; defaults reproduce the historical bench):
//   --trace-out PATH     emit every node's trace spans (replica rounds,
//                        served sessions) and the serve-phase client
//                        spans as JSON lines into PATH
//   --ports-file PATH    run the mesh over loopback TCP and write one
//                        host:port line per node (meshmon's argument
//                        format) once the mesh is converged
//   --hold-seconds S     keep the converged mesh serving for S seconds
//                        after the ports file is written, so an external
//                        scraper (CI's meshmon --expect-converged) can
//                        read the settled gauges
//
// Each round row also carries the puller's per-peer append→apply lag
// quantiles (lag_p50_ms/lag_p99_ms, -1 before the first tail apply from
// that peer) — the replication-lag telemetry of DESIGN.md §12.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "net/pipe_stream.h"
#include "obs/trace.h"
#include "recon/registry.h"
#include "replica/mesh.h"
#include "replica/replica_node.h"
#include "server/sync_client.h"
#include "transport/channel.h"
#include "workload/churn.h"
#include "workload/generator.h"

namespace rsr {
namespace {

constexpr size_t kSetSize = 1024;
constexpr size_t kRingCapacity = 24;
constexpr size_t kChurnPhases = 6;   // churn-tail rounds
constexpr size_t kBurstBatches = 64; // > kRingCapacity: falls off the log
constexpr size_t kCompareDelta = 4;  // batches of the controlled pair

recon::ProtocolContext Ctx() {
  recon::ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 14, 2);
  ctx.seed = 1919;
  return ctx;
}

recon::ProtocolParams Params() {
  recon::ProtocolParams params;
  params.k = 16;
  return params;
}

PointSet Canonical() {
  workload::CloudSpec spec;
  spec.universe = Ctx().universe;
  spec.n = kSetSize;
  spec.shape = workload::CloudShape::kClusters;
  Rng rng(3131);
  return workload::GenerateCloud(spec, &rng);
}

workload::ChurnSpec Churn(size_t updates) {
  workload::ChurnSpec spec;
  spec.fraction = 0.0;
  spec.min_updates = updates;
  return spec;
}

void ApplyChurn(replica::ReplicaNode* writer, const workload::ChurnSpec& spec,
                size_t batches, Rng* rng) {
  for (size_t i = 0; i < batches; ++i) {
    const workload::ChurnBatch batch = workload::MakeChurnBatch(
        writer->points(), Ctx().universe, spec, rng);
    writer->Apply(batch.inserts, batch.erases);
  }
}

/// The puller's per-peer append→apply lag quantiles, in milliseconds
/// ({-1, -1} before the first tail apply from that peer).
std::pair<std::string, std::string> LagCells(
    const replica::ReplicaNode& puller, const std::string& peer_name) {
  const auto lag = puller.host().metrics_registry().SnapshotHistogram(
      "rsr_replica_propagation_lag_seconds", {{"peer", peer_name}});
  if (!lag.has_value() || lag->count == 0) return {"-1", "-1"};
  return {bench::Num(1e3 * lag->Quantile(0.5)),
          bench::Num(1e3 * lag->Quantile(0.99))};
}

/// One table row per anti-entropy round (plus the summary/serve rows).
void RoundRow(const std::string& phase, size_t round, size_t node,
              size_t peer, const replica::RoundRecord& record,
              size_t divergence_after, uint64_t staleness,
              std::pair<std::string, std::string> lag = {"-1", "-1"}) {
  bench::Row({phase, std::to_string(round), std::to_string(node),
              std::to_string(peer), replica::RoundPathName(record.path),
              std::to_string(record.entries_applied),
              std::to_string(record.est_delta),
              std::to_string(record.bytes_sent + record.bytes_received),
              std::to_string(divergence_after), std::to_string(staleness),
              lag.first, lag.second, record.ok ? "1" : "0"});
}

uint64_t Staleness(const replica::ReplicaMesh& mesh, size_t node) {
  const uint64_t writer = mesh.node(0).applied_seq();
  const uint64_t mine = mesh.node(node).applied_seq();
  return writer > mine ? writer - mine : 0;
}

/// The controlled tail-vs-repair pair: a fresh 2-node mesh, the writer
/// applies kCompareDelta one-point batches, and the follower catches up in
/// one round. With `ring` >= kCompareDelta that round is a tail; with
/// ring = 1 the follower has fallen off and repairs. Same initial set,
/// same churn seed — the delta crossing the wire is identical.
replica::RoundRecord CatchUpOnce(const PointSet& initial, size_t ring) {
  replica::ReplicaMeshOptions options;
  options.nodes = 2;
  options.node.server.context = Ctx();
  options.node.server.params = Params();
  options.node.changelog.capacity = ring;
  options.node.exact_budget = 4 * kCompareDelta;  // keep the repair exact
  replica::ReplicaMesh mesh(initial, options);
  Rng rng(4242);
  ApplyChurn(&mesh.node(0), Churn(1), kCompareDelta, &rng);
  replica::RoundRecord record = mesh.RunRound(1, 0);
  if (mesh.Divergence(0, 1) != 0) record.ok = false;
  mesh.StopSchedulers();
  return record;
}

}  // namespace
}  // namespace rsr

int main(int argc, char** argv) {
  using namespace rsr;
  std::string trace_out;
  std::string ports_file;
  long hold_seconds = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--ports-file") == 0 && i + 1 < argc) {
      ports_file = argv[++i];
    } else if (std::strcmp(argv[i], "--hold-seconds") == 0 && i + 1 < argc) {
      hold_seconds = std::strtol(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_e19_replication [--trace-out PATH] "
                   "[--ports-file PATH] [--hold-seconds S]\n");
      return 2;
    }
  }

  bench::Banner(
      "E19",
      "replicated canonical set: changelog tail vs protocol repair",
      "3-replica mesh under churn converges to exact zero divergence at "
      "quiescence with both catch-up paths exercised; tail catch-up ships "
      "fewer bytes than protocol repair for the same small delta; every "
      "replica-served client result matches the in-process driver");
  bench::Row({"phase", "round", "node", "peer", "path", "entries",
              "est_delta", "bytes", "divergence", "staleness", "lag_p50_ms",
              "lag_p99_ms", "ok"});

  std::unique_ptr<obs::FileTraceSink> trace_sink;
  if (!trace_out.empty()) {
    trace_sink = std::make_unique<obs::FileTraceSink>(trace_out);
    if (!trace_sink->ok()) {
      std::fprintf(stderr, "e19: cannot open %s\n", trace_out.c_str());
      return 2;
    }
  }

  const PointSet canonical = Canonical();
  replica::ReplicaMeshOptions options;
  options.nodes = 3;
  options.node.server.context = Ctx();
  options.node.server.params = Params();
  options.node.server.trace_sink = trace_sink.get();
  options.node.changelog.capacity = kRingCapacity;
  options.use_tcp = !ports_file.empty();  // meshmon needs dialable hosts
  replica::ReplicaMesh mesh(canonical, options);
  Rng churn_rng(5151);
  size_t round = 0;

  // Phase 1: steady churn inside the ring — followers tail the log.
  for (size_t phase = 0; phase < kChurnPhases; ++phase) {
    ApplyChurn(&mesh.node(0), Churn(2), 2, &churn_rng);
    for (const size_t node : {size_t{1}, size_t{2}}) {
      const replica::RoundRecord record = mesh.RunRound(node, 0);
      RoundRow("churn-tail", round++, node, 0, record,
               mesh.Divergence(0, node), Staleness(mesh, node),
               LagCells(mesh.node(node), "node0"));
    }
  }

  // Phase 2: a burst larger than the ring — followers fall off the log
  // and must repair via full pairwise reconciliation.
  ApplyChurn(&mesh.node(0), Churn(2), kBurstBatches, &churn_rng);
  for (const size_t node : {size_t{1}, size_t{2}}) {
    const replica::RoundRecord record = mesh.RunRound(node, 0);
    RoundRow("burst-repair", round++, node, 0, record,
             mesh.Divergence(0, node), Staleness(mesh, node),
             LagCells(mesh.node(node), "node0"));
  }

  // Phase 3: quiescence — keep pulling (node 2 also from node 1, the
  // follower-to-follower path) until the whole mesh is exactly converged.
  size_t sweeps = 0;
  while (mesh.MaxDivergence() > 0 && sweeps < 16) {
    ++sweeps;
    for (const auto& [node, peer] : std::vector<std::pair<size_t, size_t>>{
             {1, 0}, {2, 1}, {2, 0}}) {
      const replica::RoundRecord record = mesh.RunRound(node, peer);
      RoundRow("quiesce", round++, node, peer, record,
               mesh.Divergence(0, node), Staleness(mesh, node),
               LagCells(mesh.node(node), "node" + std::to_string(peer)));
    }
  }
  for (const size_t node : {size_t{1}, size_t{2}}) {
    // JSON-only: the node's convergence watermark against the writer's
    // position — CI's quiescence assert, readable straight off the rows.
    bench::RowExtras(
        {{"watermark",
          std::to_string(mesh.node(node).host().metrics_registry().GaugeValue(
              "rsr_replica_convergence_watermark"))},
         {"writer_seq", std::to_string(mesh.node(0).applied_seq())}});
    bench::Row({"final", std::to_string(round), std::to_string(node), "0",
                "summary", "0", "0", "0",
                std::to_string(mesh.Divergence(0, node)),
                std::to_string(Staleness(mesh, node)), "-1", "-1", "1"});
  }

  // Phase 4: the controlled byte comparison (same delta, both paths).
  {
    const replica::RoundRecord tail = CatchUpOnce(canonical, kRingCapacity);
    const replica::RoundRecord repair = CatchUpOnce(canonical, 1);
    RoundRow("bytes", round++, 1, 0, tail, 0, 0);
    RoundRow("bytes", round++, 1, 0, repair, 0, 0);
    std::printf("bytes: tail=%zu repair=%zu (same %zu-batch delta)\n",
                tail.bytes_sent + tail.bytes_received,
                repair.bytes_sent + repair.bytes_received, kCompareDelta);
  }

  // Phase 5: replica-aware serving — a drifted client syncs against every
  // replica; each result must be bit-identical to the in-process driver
  // against that replica's set, and staleness comes from "@accept".
  server::SyncClientOptions client_options;
  client_options.context = Ctx();
  client_options.params = Params();
  client_options.trace_sink = trace_sink.get();
  client_options.propagate_trace = trace_sink != nullptr;
  const server::SyncClient client(client_options);
  Rng client_rng(6161);
  for (size_t node = 0; node < mesh.size(); ++node) {
    PointSet client_points = mesh.node(node).points();
    for (size_t i = 0; i < 8 && i < client_points.size(); ++i) {
      client_points[i] = workload::PerturbPoint(
          client_points[i], Ctx().universe, workload::NoiseKind::kGaussian,
          2.0, &client_rng);
    }
    const PointSet replica_set = mesh.node(node).points();
    auto [server_end, client_end] = net::PipeStream::CreatePair();
    std::thread serve([&mesh, node, end = std::move(server_end)]() mutable {
      mesh.node(node).host().ServeConnection(end.get());
    });
    const server::SyncOutcome outcome =
        client.Sync(client_end.get(), "riblt-oneshot", client_points);
    serve.join();

    const auto reconciler =
        recon::MakeReconciler("riblt-oneshot", Ctx(), Params());
    transport::Channel channel;
    const recon::ReconResult expected =
        reconciler->Run(client_points, replica_set, &channel);
    const bool match = bench::MatchesDriver(outcome, expected);
    const uint64_t staleness =
        mesh.node(0).applied_seq() > outcome.server_replica_seq
            ? mesh.node(0).applied_seq() - outcome.server_replica_seq
            : 0;
    // Per-node session-latency quantiles from the serving host's registry
    // (JSON-only; the printed table keeps its columns).
    bench::RowExtras(
        bench::LatencyExtras(mesh.node(node).host().metrics_registry()));
    bench::Row({"serve", std::to_string(round++), std::to_string(node),
                std::to_string(node), "client-sync", "0", "0",
                std::to_string(outcome.bytes_sent + outcome.bytes_received),
                "0", std::to_string(staleness), "-1", "-1",
                match ? "1" : "0"});
  }

  std::printf("%s\n", mesh.node(0).host().DumpStats().c_str());

  // Scrape window: publish the nodes' endpoints for meshmon, then keep
  // the converged mesh serving so the external scraper reads settled
  // gauges (watermark == writer seq).
  if (!ports_file.empty()) {
    std::FILE* f = std::fopen(ports_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "e19: cannot write %s\n", ports_file.c_str());
      mesh.StopSchedulers();
      return 2;
    }
    for (size_t node = 0; node < mesh.size(); ++node) {
      std::fprintf(f, "127.0.0.1:%u\n", mesh.node(node).host().port());
    }
    std::fclose(f);
    if (hold_seconds > 0) {
      std::printf("e19: holding %lds for scrapes\n", hold_seconds);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::seconds(hold_seconds));
    }
  }
  mesh.StopSchedulers();
  return 0;
}
