// E6 — Scaling with the universe resolution Δ.
//
// Fixed n = 1024, d = 2, k = 8, noise fixed *relative* to Δ (ε = Δ / 2^14)
// so the geometry is self-similar across resolutions; sweep Δ. Expected
// shape: one-shot quadtree bytes grow ~quadratically in log Δ (log Δ levels
// x per-cell payload that itself carries ~ d·log Δ bits), the adaptive
// variant trims the level factor and grows ~linearly in log Δ.

#include <cstdio>

#include "bench/bench_util.h"
#include "recon/registry.h"

namespace rsr {
namespace {

void RunE6() {
  bench::Banner("E6", "universe sweep (n=1024, d=2, k=8, eps=delta/2^14)",
                "one-shot ~ (log Delta)^2; adaptive ~ log Delta; both << "
                "full transfer growth");
  bench::Row({"log2_delta", "quadtree_B", "adaptive_B", "full_B(n*d*L/8)",
              "qt_level"});

  const size_t n = 1024, k = 8;
  recon::EvaluateOptions options;
  options.measure_quality = false;

  for (int log_delta : {8, 12, 16, 20, 24, 28}) {
    const int64_t delta = int64_t{1} << log_delta;
    const double eps =
        static_cast<double>(delta) / static_cast<double>(1 << 14);
    const workload::Scenario scenario = workload::StandardScenario(
        n, 2, delta, k, eps, /*seed=*/7);
    const workload::ReplicaPair pair = scenario.Materialize();
    recon::ProtocolContext ctx;
    ctx.universe = scenario.universe;
    ctx.seed = 29;

    recon::ProtocolParams pp;
    pp.k = k;
    const recon::Evaluation quadtree = EvaluateProtocol(
        "quadtree", ctx, pp, pair.alice, pair.bob, options);
    const recon::Evaluation adaptive = EvaluateProtocol(
        "quadtree-adaptive", ctx, pp, pair.alice, pair.bob, options);
    const size_t full_bits =
        n * 2 * static_cast<size_t>(log_delta);  // packed points

    bench::Row({std::to_string(log_delta), bench::Bits(quadtree.comm_bits),
                bench::Bits(adaptive.comm_bits), bench::Bits(full_bits),
                std::to_string(quadtree.chosen_level)});
  }
  std::printf("\n");
}

}  // namespace
}  // namespace rsr

int main() {
  rsr::RunE6();
  return 0;
}
