// E8 — IBLT peeling threshold (substrate validation).
//
// Insert D random keys into tables of m = α·D cells for a sweep of α and
// q ∈ {3, 4, 5}; report the fraction of 200 trials that decode completely.
// Expected shape: a sharp success threshold near the classic peeling
// constants (α* ≈ 1.222 for q=3, 1.295 for q=4, 1.425 for q=5), with the
// transition sharpening as D grows.

#include <cstdio>

#include "bench/bench_util.h"
#include "iblt/iblt.h"
#include "util/random.h"

namespace rsr {
namespace {

double SuccessRate(size_t entries, double alpha, int q, int trials) {
  int successes = 0;
  for (int t = 0; t < trials; ++t) {
    IbltConfig config;
    config.cells =
        static_cast<size_t>(alpha * static_cast<double>(entries));
    config.q = q;
    config.seed = static_cast<uint64_t>(t) * 7919 + 1;
    Iblt table(config);
    Rng rng(config.seed ^ 0xabcdef);
    for (size_t i = 0; i < entries; ++i) table.Insert(rng.Next64(), {});
    if (table.Decode().success) ++successes;
  }
  return static_cast<double>(successes) / trials;
}

void RunE8() {
  bench::Banner("E8", "IBLT decode threshold (D=400 keys, 200 trials)",
                "sharp threshold near alpha*=1.222 (q=3), 1.295 (q=4), "
                "1.425 (q=5)");
  bench::Row({"alpha", "q=3", "q=4", "q=5"});

  const size_t entries = 400;
  const int trials = 200;
  for (double alpha : {1.0, 1.1, 1.15, 1.2, 1.25, 1.3, 1.35, 1.4, 1.45, 1.5,
                       1.6, 1.8, 2.0}) {
    bench::Row({bench::Num(alpha),
                bench::Num(SuccessRate(entries, alpha, 3, trials)),
                bench::Num(SuccessRate(entries, alpha, 4, trials)),
                bench::Num(SuccessRate(entries, alpha, 5, trials))});
  }
  std::printf("\n");
}

}  // namespace
}  // namespace rsr

int main() {
  rsr::RunE8();
  return 0;
}
