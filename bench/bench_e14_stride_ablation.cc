// E14 — Design-choice ablations: level stride and checksum width.
//
// (a) Level stride: ship every s-th quadtree level. Expected shape: bytes
//     fall ~1/s while the decoded level (and thus the repair error) only
//     coarsens by at most s-1 levels — a favourable trade for bandwidth-
//     bound deployments.
// (b) Checksum width: narrower per-cell checksums shrink every table but
//     raise the probability that a corrupt "pure" cell slips through.
//     Expected shape: bytes fall linearly with the width; end-to-end
//     success stays perfect down to surprisingly few bits because the
//     value/key consistency check catches stragglers.

#include <cstdio>

#include "bench/bench_util.h"
#include "recon/registry.h"
#include "util/stats.h"

namespace rsr {
namespace {

void StrideSweep() {
  std::printf("-- (a) level stride (n=512, d=2, delta=2^20, k=8, eps=2, "
              "8 trials)\n");
  bench::JsonTable("E14a", "level stride ablation (n=512, d=2, delta=2^20, "
                   "k=8, eps=2)",
                   "bytes ~ 1/stride with bounded quality loss");
  bench::Row({"stride", "bytes", "succ", "level_med", "emd_mean"});
  const int trials = 8;
  for (int stride : {1, 2, 3, 4, 6}) {
    SampleSet emds, levels;
    size_t bits = 0;
    int successes = 0;
    for (int t = 0; t < trials; ++t) {
      const workload::Scenario scenario = workload::StandardScenario(
          512, 2, int64_t{1} << 20, 8, 2.0,
          /*seed=*/600 + static_cast<uint64_t>(t));
      const workload::ReplicaPair pair = scenario.Materialize();
      recon::ProtocolContext ctx;
      ctx.universe = scenario.universe;
      ctx.seed = 51 + static_cast<uint64_t>(t);
      recon::ProtocolParams pp;
      pp.quadtree.k = 8;
      pp.quadtree.level_stride = stride;
      recon::EvaluateOptions options;
      options.metric = scenario.metric;
      const recon::Evaluation eval = EvaluateProtocol(
          "quadtree", ctx, pp, pair.alice, pair.bob, options);
      bits = eval.comm_bits;
      if (eval.success) {
        ++successes;
        emds.Add(eval.emd_after);
        levels.Add(eval.chosen_level);
      }
    }
    bench::Row({std::to_string(stride), bench::Bits(bits),
                bench::Num(static_cast<double>(successes) / trials),
                levels.count() ? bench::Num(levels.Median()) : "n/a",
                emds.count() ? bench::Num(emds.Mean()) : "n/a"});
  }
}

void ChecksumSweep() {
  std::printf("\n-- (b) checksum width (same workload, 8 trials)\n");
  bench::JsonTable("E14b", "checksum width ablation (same workload)",
                   "bytes fall with width; no quality loss down to ~16 bits");
  bench::Row({"check_bits", "bytes", "succ", "emd_mean"});
  const int trials = 8;
  for (int bits_width : {8, 16, 24, 32, 48, 64}) {
    SampleSet emds;
    size_t bits = 0;
    int successes = 0;
    for (int t = 0; t < trials; ++t) {
      const workload::Scenario scenario = workload::StandardScenario(
          512, 2, int64_t{1} << 20, 8, 2.0,
          /*seed=*/700 + static_cast<uint64_t>(t));
      const workload::ReplicaPair pair = scenario.Materialize();
      recon::ProtocolContext ctx;
      ctx.universe = scenario.universe;
      ctx.seed = 61 + static_cast<uint64_t>(t);
      recon::ProtocolParams pp;
      pp.quadtree.k = 8;
      pp.quadtree.checksum_bits = bits_width;
      recon::EvaluateOptions options;
      options.metric = scenario.metric;
      const recon::Evaluation eval = EvaluateProtocol(
          "quadtree", ctx, pp, pair.alice, pair.bob, options);
      bits = eval.comm_bits;
      if (eval.success) {
        ++successes;
        emds.Add(eval.emd_after);
      }
    }
    bench::Row({std::to_string(bits_width), bench::Bits(bits),
                bench::Num(static_cast<double>(successes) / trials),
                emds.count() ? bench::Num(emds.Mean()) : "n/a"});
  }
}

void RunE14() {
  bench::Banner("E14", "design ablations: level stride & checksum width",
                "bytes ~ 1/stride with bounded quality loss; checksum "
                "width buys bytes with no quality loss down to ~16 bits");
  StrideSweep();
  ChecksumSweep();
  std::printf("\n");
}

}  // namespace
}  // namespace rsr

int main() {
  rsr::RunE14();
  return 0;
}
