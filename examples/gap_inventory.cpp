// Gap-guarantee synchronisation: asset-inventory completeness.
//
// A field team (Alice) and headquarters (Bob) each maintain a register of
// surveyed asset locations. GPS fixes of the same asset differ by a couple
// of metres between the two registers (r1), while distinct assets are at
// least tens of metres apart (r2). Headquarters does not need Alice's exact
// coordinates for assets it already knows — it needs certainty that *no
// asset is missing entirely*: after the sync, every asset in Alice's
// register must have a headquarters entry within r2 of it.
//
// This is exactly the Gap Guarantee model (extension module). The protocol
// reconciles lattice-cell sketches and then transmits, at full precision,
// only the assets headquarters provably lacks.
//
// Build & run:   ./examples/gap_inventory

#include <cstdio>

#include "recon/registry.h"
#include "workload/generator.h"

int main() {
  using namespace rsr;

  // Coordinates in a 2^20 x 2^20 grid (~1m resolution over ~1000 km).
  const Universe universe = MakeUniverse(int64_t{1} << 20, 2);
  const size_t n = 5000;
  const size_t newly_surveyed = 14;  // assets only Alice knows

  workload::CloudSpec cloud;
  cloud.universe = universe;
  cloud.n = n;
  cloud.shape = workload::CloudShape::kClusters;
  cloud.num_clusters = 64;
  cloud.cluster_stddev_fraction = 0.005;
  workload::PerturbationSpec spec;
  spec.noise = workload::NoiseKind::kUniformBox;
  spec.noise_scale = 2.0;  // GPS disagreement (r1 scale)
  spec.outliers = newly_surveyed;
  const workload::ReplicaPair pair =
      workload::MakeReplicaPair(cloud, spec, /*seed=*/314);

  recon::ProtocolContext context;
  context.universe = universe;
  context.seed = 2718;

  recon::ProtocolParams params;
  params.gap.r1 = 2.0;    // same-asset GPS disagreement
  params.gap.r2 = 512.0;  // distinct assets are farther than this

  transport::Channel channel;
  const recon::ReconResult result =
      recon::MakeReconciler("gap-lattice", context, params)
          ->Run(pair.alice, pair.bob, &channel);

  std::printf("assets: %zu on each side, %zu known only to the field "
              "team\n",
              n, newly_surveyed);
  std::printf("protocol success:      %s (attempt %zu)\n",
              result.success ? "yes" : "no", result.attempts);
  std::printf("assets transmitted:    %zu\n", result.transmitted);
  std::printf("communication:         %.0f bytes (%zu rounds)\n",
              channel.stats().total_bytes(), channel.stats().rounds);
  std::printf("full register upload:  %.0f bytes\n",
              static_cast<double>(n) * universe.BitsPerPoint() / 8.0);
  const bool guaranteed = gaprecon::SatisfiesGapGuarantee(
      pair.alice, result.bob_final, params.gap, universe.d);
  std::printf("coverage guarantee:    every field asset within r2 of an HQ "
              "entry: %s\n",
              guaranteed ? "HOLDS" : "VIOLATED");
  std::printf("\n%s\n", channel.TranscriptToString().c_str());
  return (result.success && guaranteed) ? 0 : 1;
}
