// Sensor-network synchronisation: the paper's motivating scenario.
//
// Two sensor stations observe the same field of 20,000 moving objects.
// Each epoch both stations take a fresh reading of every object (their
// measurements differ by calibration noise), but a fixed set of objects is
// permanently occluded from station B — without help its knowledge of them
// goes stale and the error grows with every epoch of drift. Reconciling
// with station A every epoch recovers the occluded objects to within the
// protocol's spatial resolution, paying O(k)-sized sketches instead of
// re-uploading the whole field.
//
// Build & run:   ./examples/sensor_sync

#include <cstdio>

#include "geometry/emd.h"
#include "geometry/metric.h"
#include "recon/registry.h"
#include "util/random.h"
#include "workload/generator.h"

namespace {

using namespace rsr;

// Applies one epoch of world drift to the ground-truth object list.
void DriftWorld(PointSet* world, const Universe& universe, Rng* rng) {
  for (Point& p : *world) {
    p = workload::PerturbPoint(p, universe, workload::NoiseKind::kGaussian,
                               /*scale=*/400.0, rng);
  }
}

// A station's view: the world as seen through its calibration noise.
PointSet Observe(const PointSet& world, const Universe& universe,
                 double noise, Rng* rng) {
  PointSet view;
  view.reserve(world.size());
  for (const Point& p : world) {
    view.push_back(workload::PerturbPoint(
        p, universe, workload::NoiseKind::kGaussian, noise, rng));
  }
  return view;
}

// Mean distance from A's view of the given objects to the nearest point of
// B's map — how well B knows the occluded objects.
double OccludedGap(const PointSet& a, const PointSet& b,
                   const std::vector<size_t>& victims) {
  double total = 0.0;
  for (size_t v : victims) {
    double best = 1e300;
    for (const Point& candidate : b) {
      const double dist = Distance(a[v], candidate, Metric::kL2);
      if (dist < best) best = dist;
    }
    total += best;
  }
  return total / static_cast<double>(victims.size());
}

}  // namespace

int main() {
  const Universe universe = MakeUniverse(int64_t{1} << 20, 2);
  const size_t n = 20000;
  const size_t occluded = 25;  // objects B cannot see this epoch
  // Budget: occluded objects plus the noise-straddler population the
  // level selector must absorb to reach a fine level consistently.
  const size_t k = 120;

  Rng world_rng(11);
  workload::CloudSpec cloud;
  cloud.universe = universe;
  cloud.n = n;
  cloud.shape = workload::CloudShape::kClusters;
  cloud.num_clusters = 24;
  cloud.cluster_stddev_fraction = 0.02;
  PointSet world = workload::GenerateCloud(cloud, &world_rng);

  Rng obs_rng_a(21), obs_rng_b(22), occlusion_rng(23);
  PointSet station_b = Observe(world, universe, 2.0, &obs_rng_b);
  PointSet station_b_nosync = station_b;  // control: never reconciles

  // The permanently occluded objects (fixed across epochs).
  std::vector<size_t> victims;
  while (victims.size() < occluded) {
    const size_t v = occlusion_rng.Below(n);
    bool dup = false;
    for (size_t existing : victims) dup |= (existing == v);
    if (!dup) victims.push_back(v);
  }

  std::printf("%-7s%-12s%-12s%-12s%-12s%-12s%-8s\n", "epoch", "bytes",
              "cum_bytes", "naive_cum", "gap_nosync", "gap_synced", "level");

  size_t cumulative_bits = 0;
  size_t naive_bits = 0;
  for (int epoch = 1; epoch <= 8; ++epoch) {
    DriftWorld(&world, universe, &world_rng);
    const PointSet station_a = Observe(world, universe, 2.0, &obs_rng_a);

    // B re-observes everything except the occluded objects, which keep
    // whatever B currently believes about them (stale and drifting apart).
    PointSet fresh_b = Observe(world, universe, 2.0, &obs_rng_b);
    PointSet fresh_b_nosync = fresh_b;
    for (size_t v : victims) fresh_b[v] = station_b[v];
    for (size_t v : victims) fresh_b_nosync[v] = station_b_nosync[v];
    station_b = fresh_b;
    station_b_nosync = fresh_b_nosync;
    const double gap_nosync =
        OccludedGap(station_a, station_b_nosync, victims);

    recon::ProtocolContext context;
    context.universe = universe;
    context.seed = 1000 + static_cast<uint64_t>(epoch);  // fresh coins
    recon::ProtocolParams params;
    params.k = k;

    transport::Channel channel;
    const recon::ReconResult result =
        recon::MakeReconciler("quadtree-adaptive", context, params)
            ->Run(station_a, station_b, &channel);
    if (result.success) {
      station_b = result.bob_final;
    }
    cumulative_bits += channel.stats().total_bits;
    naive_bits += n * static_cast<size_t>(universe.BitsPerPoint());

    const double gap_synced = OccludedGap(station_a, station_b, victims);
    std::printf("%-7d%-12.0f%-12.0f%-12.0f%-12.1f%-12.1f%-8d\n", epoch,
                channel.stats().total_bytes(),
                static_cast<double>(cumulative_bits) / 8.0,
                static_cast<double>(naive_bits) / 8.0, gap_nosync, gap_synced,
                result.chosen_level);
  }
  std::printf("\nrobust sync used %.1f%% of the naive per-epoch upload "
              "bytes\n",
              100.0 * static_cast<double>(cumulative_bits) /
                  static_cast<double>(naive_bits));
  return 0;
}
