// Database replica synchronisation with floating-point columns.
//
// Two database replicas hold the same table of (lat, lon, reading) rows,
// but one replica stored the readings after a lossy float pipeline
// (serialisation round-trips, unit conversions), so almost every row
// differs in its low-order bits. A handful of rows genuinely differ
// (late-arriving updates). This example quantises the rows into [Δ]^3,
// compares exact IBLT reconciliation (pays for every row — the float jitter
// makes the whole table "different") against robust reconciliation (pays
// only for the real updates), and verifies that the robust result captures
// the true updates.
//
// Build & run:   ./examples/db_float_sync

#include <cmath>
#include <cstdio>
#include <vector>

#include "geometry/emd.h"
#include "recon/registry.h"
#include "util/random.h"

namespace {

using namespace rsr;

struct Row {
  double lat;      // [-90, 90]
  double lon;      // [-180, 180]
  double reading;  // [0, 1000)
};

// Quantises a row into the integer universe (20 bits per column).
Point QuantiseRow(const Row& row, const Universe& universe) {
  const double scale = static_cast<double>(universe.delta - 1);
  auto q = [&](double v, double lo, double hi) {
    double unit = (v - lo) / (hi - lo);
    if (unit < 0) unit = 0;
    if (unit > 1) unit = 1;
    return static_cast<int64_t>(std::llround(unit * scale));
  };
  return {q(row.lat, -90, 90), q(row.lon, -180, 180),
          q(row.reading, 0, 1000)};
}

// Simulates the lossy float pipeline: multiply through a unit conversion
// and back, which perturbs the low-order bits.
Row LossyPipeline(Row row, Rng* rng) {
  const double factor = 1.0 + 1e-7 * rng->Gaussian();
  row.lat = (row.lat * factor) / factor + 4e-4 * rng->Gaussian();
  row.lon = (row.lon * factor) / factor + 8e-4 * rng->Gaussian();
  row.reading = row.reading * 3.28084 / 3.28084 + 2e-3 * rng->Gaussian();
  return row;
}

}  // namespace

int main() {
  const size_t n = 4096;
  const size_t true_updates = 12;
  const Universe universe = MakeUniverse(int64_t{1} << 20, 3);

  // Primary replica.
  Rng rng(31);
  std::vector<Row> primary;
  primary.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    primary.push_back({rng.NextDouble() * 180 - 90,
                       rng.NextDouble() * 360 - 180,
                       rng.NextDouble() * 1000});
  }

  // Secondary replica: every row went through the lossy pipeline, and the
  // last `true_updates` rows never arrived (they hold stale values).
  std::vector<Row> secondary;
  secondary.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i + true_updates >= n) {
      secondary.push_back({rng.NextDouble() * 180 - 90,
                           rng.NextDouble() * 360 - 180,
                           rng.NextDouble() * 1000});  // stale row
    } else {
      secondary.push_back(LossyPipeline(primary[i], &rng));
    }
  }

  PointSet alice, bob;
  for (const Row& row : primary) alice.push_back(QuantiseRow(row, universe));
  for (const Row& row : secondary) bob.push_back(QuantiseRow(row, universe));

  recon::ProtocolContext context;
  context.universe = universe;
  context.seed = 99;

  recon::ProtocolParams params;
  params.k = 2 * true_updates;

  // Exact reconciliation: correct but pays for the float jitter.
  transport::Channel exact_channel;
  const recon::ReconResult exact =
      recon::MakeReconciler("exact-iblt", context, params)
          ->Run(alice, bob, &exact_channel);

  // Robust reconciliation: pays only for the true updates.
  transport::Channel robust_channel;
  const recon::ReconResult robust =
      recon::MakeReconciler("quadtree", context, params)
          ->Run(alice, bob, &robust_channel);

  const double emd_before = GreedyEmdUpperBound(alice, bob, Metric::kL1);
  const double emd_exact =
      GreedyEmdUpperBound(alice, exact.bob_final, Metric::kL1);
  const double emd_robust =
      GreedyEmdUpperBound(alice, robust.bob_final, Metric::kL1);

  std::printf("table rows:                 %zu (%zu real updates, float "
              "jitter on the rest)\n",
              n, true_updates);
  std::printf("exact recon:   %9.0f bytes  -> EMD %.0f (success=%d)\n",
              exact_channel.stats().total_bytes(), emd_exact, exact.success);
  std::printf("robust recon:  %9.0f bytes  -> EMD %.0f (success=%d, "
              "level=%d)\n",
              robust_channel.stats().total_bytes(), emd_robust,
              robust.success, robust.chosen_level);
  std::printf("no sync:             0 bytes  -> EMD %.0f\n", emd_before);
  std::printf("\nrobust used %.1fx fewer bytes than exact while removing "
              "%.0f%% of the recoverable EMD\n",
              exact_channel.stats().total_bytes() /
                  robust_channel.stats().total_bytes(),
              100.0 * (emd_before - emd_robust) / emd_before);
  return (robust.success && exact.success) ? 0 : 1;
}
