// Quickstart: the smallest end-to-end use of the rsr public API, driving
// the two endpoint sessions explicitly — the shape a real deployment has,
// where Alice and Bob live on different machines and you own the transport.
//
// Two replicas of a 2-D point set differ by per-point measurement noise
// plus a few genuinely different points. Exact synchronisation would ship
// almost everything; robust reconciliation ships O(k) quadtree sketches and
// leaves Bob with a set whose earth mover's distance to Alice's is close to
// the best achievable after discounting the k outliers.
//
// Build & run:   ./examples/quickstart

#include <cstdio>
#include <memory>

#include "geometry/emd.h"
#include "recon/registry.h"
#include "recon/session.h"
#include "workload/generator.h"

int main() {
  using namespace rsr;

  // 1. A universe: 2-D points with 16-bit coordinates.
  const Universe universe = MakeUniverse(int64_t{1} << 16, 2);

  // 2. Two noisy replicas of the same 256-point cloud, with 8 outliers.
  workload::CloudSpec cloud;
  cloud.universe = universe;
  cloud.n = 256;
  cloud.shape = workload::CloudShape::kClusters;
  workload::PerturbationSpec perturbation;
  perturbation.noise = workload::NoiseKind::kGaussian;
  perturbation.noise_scale = 2.0;
  perturbation.outliers = 8;
  const workload::ReplicaPair pair =
      workload::MakeReplicaPair(cloud, perturbation, /*seed=*/2024);

  // 3. Look the protocol up by name. The context seed plays the role of
  //    public coins: both parties derive identical hash functions from it.
  recon::ProtocolContext context;
  context.universe = universe;
  context.seed = 7;
  recon::ProtocolParams params;
  params.k = 8;  // outlier budget
  const std::unique_ptr<recon::Reconciler> protocol =
      recon::MakeReconciler("quadtree", context, params);

  // 4. Each party is an independently driveable endpoint. In production
  //    the two sessions live in different processes and the loop below is
  //    your network; here an accounting channel plays that role.
  std::unique_ptr<recon::PartySession> alice =
      protocol->MakeAliceSession(pair.alice);
  std::unique_ptr<recon::PartySession> bob =
      protocol->MakeBobSession(pair.bob);

  transport::Channel channel;
  for (auto& m : alice->Start()) {
    channel.Send(transport::Direction::kAliceToBob, std::move(m));
  }
  for (auto& m : bob->Start()) {
    channel.Send(transport::Direction::kBobToAlice, std::move(m));
  }
  while (!bob->IsDone()) {
    bool progress = false;
    while (!bob->IsDone() &&
           channel.HasPending(transport::Direction::kAliceToBob)) {
      auto msg = channel.Receive(transport::Direction::kAliceToBob);
      for (auto& m : bob->OnMessage(std::move(*msg))) {
        channel.Send(transport::Direction::kBobToAlice, std::move(m));
      }
      progress = true;
    }
    while (!alice->IsDone() &&
           channel.HasPending(transport::Direction::kBobToAlice)) {
      auto msg = channel.Receive(transport::Direction::kBobToAlice);
      for (auto& m : alice->OnMessage(std::move(*msg))) {
        channel.Send(transport::Direction::kAliceToBob, std::move(m));
      }
      progress = true;
    }
    if (!progress) break;  // half-open failure; result carries the error
  }
  const recon::ReconResult result = bob->TakeResult();

  // 5. Report.
  std::printf("protocol succeeded:   %s\n", result.success ? "yes" : "no");
  if (result.error != recon::SessionError::kNone) {
    std::printf("session error:        %s\n",
                recon::SessionErrorName(result.error));
  }
  std::printf("decoded at level:     %d (cell side %lld)\n",
              result.chosen_level,
              static_cast<long long>(int64_t{1} << result.chosen_level));
  std::printf("differing cell pairs: %zu\n", result.decoded_entries);
  std::printf("communication:        %.1f bytes (%zu messages, %zu rounds)\n",
              channel.stats().total_bytes(), channel.stats().message_count,
              channel.stats().rounds);
  std::printf("full transfer would be %.1f bytes\n",
              256.0 * universe.BitsPerPoint() / 8.0);
  std::printf("(robust cost scales with k, not n: at this toy n shipping\n");
  std::printf(" everything is cheaper; the crossover is near n ~ 10^4 — \n");
  std::printf(" see bench_e4_scale_n)\n");

  const double before = ExactEmd(pair.alice, pair.bob, Metric::kL2);
  const double after = ExactEmd(pair.alice, result.bob_final, Metric::kL2);
  const double best =
      ExactEmdK(pair.alice, pair.bob, params.k, Metric::kL2);
  std::printf("EMD before:  %.1f\n", before);
  std::printf("EMD after:   %.1f\n", after);
  std::printf("EMD_k bound: %.1f  (k=%zu outliers discounted)\n", best,
              params.k);
  return result.success ? 0 : 1;
}
