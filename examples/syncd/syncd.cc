// syncd — many-client sync server demo over real loopback sockets.
//
// Starts a SyncServer holding a canonical clustered point cloud, then
// simulates a fleet of drifting replicas: each client thread connects over
// TCP, negotiates a protocol from the registry, and reconciles its replica
// against the canonical set. Prints one line per client and the server's
// aggregate metrics. Usage:
//
//   syncd [num_clients] [worker_threads]
//
// See examples/syncd/README.md for a walkthrough of the wire format and
// the handshake this exercises.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp.h"
#include "recon/driver.h"
#include "server/sync_client.h"
#include "server/sync_server.h"
#include "workload/generator.h"

namespace {

using namespace rsr;

constexpr size_t kSetSize = 200;

recon::ProtocolContext Context() {
  recon::ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 14, 2);
  ctx.seed = 2014;  // shared public coins: both parties must agree
  return ctx;
}

recon::ProtocolParams Params() {
  recon::ProtocolParams params;
  params.k = 8;
  return params;
}

PointSet CanonicalCloud() {
  workload::CloudSpec spec;
  spec.universe = Context().universe;
  spec.n = kSetSize;
  spec.shape = workload::CloudShape::kClusters;
  Rng rng(99);
  return workload::GenerateCloud(spec, &rng);
}

PointSet Drift(const PointSet& base, uint64_t seed) {
  const Universe universe = Context().universe;
  Rng rng(seed);
  PointSet replica;
  replica.reserve(base.size());
  for (const Point& p : base) {
    replica.push_back(workload::PerturbPoint(
        p, universe, workload::NoiseKind::kGaussian, 1.5, &rng));
  }
  for (int i = 0; i < 5; ++i) {  // a few genuinely divergent points
    Point fresh(universe.d);
    for (int j = 0; j < universe.d; ++j) {
      fresh[j] = static_cast<int64_t>(rng.Below(universe.delta));
    }
    replica[rng.Below(replica.size())] = std::move(fresh);
  }
  return replica;
}

}  // namespace

int main(int argc, char** argv) {
  const size_t num_clients = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const size_t workers = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 4;

  const PointSet canonical = CanonicalCloud();
  server::SyncServerOptions server_options;
  server_options.context = Context();
  server_options.params = Params();
  server_options.worker_threads = workers;
  server::SyncServer server(canonical, server_options);
  if (!server.Start(net::TcpListener::Listen("127.0.0.1", 0))) {
    std::fprintf(stderr, "syncd: could not bind a loopback listener\n");
    return 1;
  }
  std::printf("syncd: serving %zu canonical points on 127.0.0.1:%u with %zu "
              "workers\n\n",
              canonical.size(), server.port(), workers);

  const std::vector<std::string> protocols = {
      "quadtree", "exact-iblt", "full-transfer", "riblt-oneshot"};
  std::vector<std::thread> clients;
  std::mutex print_mu;
  clients.reserve(num_clients);
  for (size_t i = 0; i < num_clients; ++i) {
    clients.emplace_back([&, i] {
      const std::string& protocol = protocols[i % protocols.size()];
      server::SyncClientOptions options;
      options.context = Context();
      options.params = Params();
      const server::SyncClient client(options);
      auto stream = net::TcpStream::Connect("127.0.0.1", server.port());
      if (stream == nullptr) {
        std::fprintf(stderr, "client %zu: connect failed\n", i);
        return;
      }
      const server::SyncOutcome outcome =
          client.Sync(stream.get(), protocol, Drift(canonical, 100 + 7 * i));
      // success=false with error=kNone is a protocol-level failure (e.g. a
      // sketch sized for k differences meeting far more), not a transport one.
      const char* status =
          outcome.result.success
              ? "ok"
              : (outcome.result.error == recon::SessionError::kNone
                     ? "no-decode"
                     : recon::SessionErrorName(outcome.result.error));
      std::lock_guard<std::mutex> lock(print_mu);
      std::printf(
          "client %2zu  %-15s %-9s recovered=%4zu pts  %6zu B up  %6zu B "
          "down  %.1f ms\n",
          i, protocol.c_str(), status,
          outcome.result.bob_final.size(), outcome.bytes_sent,
          outcome.bytes_received, 1e3 * outcome.wall_seconds);
    });
  }
  for (std::thread& t : clients) t.join();
  server.Stop();

  const server::SyncServerMetrics metrics = server.metrics();
  std::printf("\nserver: %zu accepted, %zu ok, %zu failed, %zu rejected, "
              "%zu B in, %zu B out\n",
              metrics.connections_accepted, metrics.syncs_completed,
              metrics.syncs_failed, metrics.handshakes_rejected,
              metrics.bytes_in, metrics.bytes_out);
  for (const auto& [name, stats] : metrics.per_protocol) {
    std::printf("  %-15s %zu syncs, %zu failures, mean %.1f ms, "
                "%zu B in, %zu B out\n",
                name.c_str(), stats.syncs, stats.failures,
                stats.syncs + stats.failures > 0
                    ? 1e3 * stats.wall_seconds /
                          static_cast<double>(stats.syncs + stats.failures)
                    : 0.0,
                stats.bytes_in, stats.bytes_out);
  }
  return 0;
}
