// syncd — many-client sync server demo over real loopback sockets.
//
// Starts a sync server holding a canonical clustered point cloud, then
// simulates a fleet of drifting replicas: each client thread connects over
// TCP, negotiates a protocol from the registry, and reconciles its replica
// against the canonical set. Prints one line per client and the server's
// aggregate metrics. Usage:
//
//   syncd [num_clients] [worker_threads] [--async] [--shards N]
//         [--metrics-port P] [--hold-seconds S]
//
// By default the threaded SyncServer hosts the fleet (one blocked worker
// per in-flight client); --async selects the epoll-sharded AsyncSyncServer
// instead, with --shards N event-loop shards (default 2). The served
// results are identical either way — compare the metrics line to watch
// peak_active change from the worker count to the whole fleet.
// --metrics-port P additionally serves the host's metrics registry as
// Prometheus text on http://127.0.0.1:P/metrics (P=0 picks an ephemeral
// port, printed at startup); --hold-seconds S keeps the server and the
// metrics endpoint up for S seconds after the client fleet finishes so an
// external scraper (e.g. CI's curl check) can read the settled counters.
// See examples/syncd/README.md for a walkthrough.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp.h"
#include "obs/http_exporter.h"
#include "recon/driver.h"
#include "server/async_sync_server.h"
#include "server/sync_client.h"
#include "server/sync_server.h"
#include "workload/generator.h"

namespace {

using namespace rsr;

constexpr size_t kSetSize = 200;

recon::ProtocolContext Context() {
  recon::ProtocolContext ctx;
  ctx.universe = MakeUniverse(1 << 14, 2);
  ctx.seed = 2014;  // shared public coins: both parties must agree
  return ctx;
}

recon::ProtocolParams Params() {
  recon::ProtocolParams params;
  // The EMD-model sketches budget for the k planted outliers; the
  // exact-key one-shot RIBLT must budget for the exact-key delta, which
  // per-point noise drives toward both whole sets (see bench_e16).
  params.quadtree.k = 8;
  params.mlsh.k = 8;
  params.riblt.k = 2 * kSetSize;
  return params;
}

PointSet CanonicalCloud() {
  workload::CloudSpec spec;
  spec.universe = Context().universe;
  spec.n = kSetSize;
  spec.shape = workload::CloudShape::kClusters;
  Rng rng(99);
  return workload::GenerateCloud(spec, &rng);
}

PointSet Drift(const PointSet& base, uint64_t seed) {
  const Universe universe = Context().universe;
  Rng rng(seed);
  PointSet replica;
  replica.reserve(base.size());
  for (const Point& p : base) {
    replica.push_back(workload::PerturbPoint(
        p, universe, workload::NoiseKind::kGaussian, 1.5, &rng));
  }
  for (int i = 0; i < 5; ++i) {  // a few genuinely divergent points
    Point fresh(universe.d);
    for (int j = 0; j < universe.d; ++j) {
      fresh[j] = static_cast<int64_t>(rng.Below(universe.delta));
    }
    replica[rng.Below(replica.size())] = std::move(fresh);
  }
  return replica;
}

}  // namespace

int main(int argc, char** argv) {
  size_t num_clients = 12;
  size_t workers = 4;
  size_t shards = 2;
  bool use_async = false;
  bool serve_metrics = false;
  long metrics_port = 0;
  long hold_seconds = 0;
  size_t positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--async") == 0) {
      use_async = true;
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "syncd: --shards needs a value\n");
        return 1;
      }
      shards = std::strtoul(argv[++i], nullptr, 10);
      use_async = true;
    } else if (std::strcmp(argv[i], "--metrics-port") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "syncd: --metrics-port needs a value\n");
        return 1;
      }
      serve_metrics = true;
      metrics_port = std::strtol(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--hold-seconds") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "syncd: --hold-seconds needs a value\n");
        return 1;
      }
      hold_seconds = std::strtol(argv[++i], nullptr, 10);
    } else if (argv[i][0] == '-' || positional >= 2) {
      std::fprintf(stderr,
                   "usage: syncd [num_clients] [worker_threads] [--async] "
                   "[--shards N] [--metrics-port P] [--hold-seconds S]\n");
      return 1;
    } else if (positional++ == 0) {
      num_clients = std::strtoul(argv[i], nullptr, 10);
    } else {
      workers = std::strtoul(argv[i], nullptr, 10);
    }
  }

  const PointSet canonical = CanonicalCloud();
  // Both hosts serve the identical wire protocol; pick one.
  std::unique_ptr<server::SyncServer> threaded;
  std::unique_ptr<server::AsyncSyncServer> async;
  if (use_async) {
    server::AsyncSyncServerOptions options;
    options.context = Context();
    options.params = Params();
    options.shards = shards;
    async = std::make_unique<server::AsyncSyncServer>(canonical, options);
  } else {
    server::SyncServerOptions options;
    options.context = Context();
    options.params = Params();
    options.worker_threads = workers;
    threaded = std::make_unique<server::SyncServer>(canonical, options);
  }
  const bool started =
      use_async ? async->Start(net::TcpListener::Listen("127.0.0.1", 0))
                : threaded->Start(net::TcpListener::Listen("127.0.0.1", 0));
  if (!started) {
    std::fprintf(stderr, "syncd: could not bind a loopback listener\n");
    return 1;
  }
  const uint16_t port = use_async ? async->port() : threaded->port();
  const auto start_time = std::chrono::steady_clock::now();
  obs::MetricsHttpServer metrics_http(
      [&]() {
        return use_async ? async->RenderMetrics() : threaded->RenderMetrics();
      },
      [&]() {
        // /healthz: one line a load balancer (or a human) can eyeball —
        // liveness, uptime, and the replication position.
        const double uptime =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start_time)
                .count();
        const uint64_t seq =
            use_async ? async->replica_seq() : threaded->replica_seq();
        const bool dirty = use_async ? false : threaded->repair_dirty();
        char line[128];
        std::snprintf(line, sizeof line,
                      "ok uptime_seconds=%.1f replica_seq=%llu dirty=%d\n",
                      uptime, static_cast<unsigned long long>(seq),
                      dirty ? 1 : 0);
        return std::string(line);
      });
  if (serve_metrics) {
    if (metrics_port < 0 || metrics_port > 65535 ||
        !metrics_http.Start(net::TcpListener::Listen(
            "127.0.0.1", static_cast<uint16_t>(metrics_port)))) {
      std::fprintf(stderr, "syncd: could not bind the metrics port\n");
      return 1;
    }
    std::printf("syncd: metrics on http://127.0.0.1:%u/metrics "
                "(health on /healthz)\n",
                metrics_http.port());
  }
  if (use_async) {
    std::printf("syncd: serving %zu canonical points on 127.0.0.1:%u with "
                "%zu async shards\n\n",
                canonical.size(), port, shards);
  } else {
    std::printf("syncd: serving %zu canonical points on 127.0.0.1:%u with "
                "%zu workers\n\n",
                canonical.size(), port, workers);
  }

  const std::vector<std::string> protocols = {
      "quadtree", "exact-iblt", "full-transfer", "riblt-oneshot"};
  std::vector<std::thread> clients;
  std::mutex print_mu;
  clients.reserve(num_clients);
  for (size_t i = 0; i < num_clients; ++i) {
    clients.emplace_back([&, i] {
      const std::string& protocol = protocols[i % protocols.size()];
      server::SyncClientOptions options;
      options.context = Context();
      options.params = Params();
      const server::SyncClient client(options);
      auto stream = net::TcpStream::Connect("127.0.0.1", port);
      if (stream == nullptr) {
        std::fprintf(stderr, "client %zu: connect failed\n", i);
        return;
      }
      const server::SyncOutcome outcome =
          client.Sync(stream.get(), protocol, Drift(canonical, 100 + 7 * i));
      // success=false with error=kNone is a protocol-level failure (e.g. a
      // sketch sized for k differences meeting far more), not a transport one.
      const char* status =
          outcome.result.success
              ? "ok"
              : (outcome.result.error == recon::SessionError::kNone
                     ? "no-decode"
                     : recon::SessionErrorName(outcome.result.error));
      std::lock_guard<std::mutex> lock(print_mu);
      std::printf(
          "client %2zu  %-15s %-9s recovered=%4zu pts  %6zu B up  %6zu B "
          "down  %.1f ms\n",
          i, protocol.c_str(), status,
          outcome.result.bob_final.size(), outcome.bytes_sent,
          outcome.bytes_received, 1e3 * outcome.wall_seconds);
    });
  }
  for (std::thread& t : clients) t.join();
  if (hold_seconds > 0) {
    // Keep the host (and the /metrics endpoint) up with the fleet's
    // counters settled, so an external scraper can read them.
    std::printf("\nsyncd: holding for %lds for scrapes\n", hold_seconds);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(hold_seconds));
  }
  metrics_http.Stop();  // the renderer borrows the host: stop it first
  if (use_async) {
    async->Stop();
  } else {
    threaded->Stop();
  }

  const server::SyncServerMetrics metrics =
      use_async ? async->metrics() : threaded->metrics();
  std::printf("\nserver: %zu accepted, %zu ok, %zu failed, %zu rejected, "
              "peak %zu concurrent, %zu B in, %zu B out\n",
              metrics.connections_accepted, metrics.syncs_completed,
              metrics.syncs_failed, metrics.handshakes_rejected,
              metrics.peak_active_sessions, metrics.bytes_in,
              metrics.bytes_out);
  for (const auto& [name, stats] : metrics.per_protocol) {
    std::printf("  %-15s %zu syncs, %zu failures, mean %.1f ms, "
                "%zu B in, %zu B out\n",
                name.c_str(), stats.syncs, stats.failures,
                stats.syncs + stats.failures > 0
                    ? 1e3 * stats.wall_seconds /
                          static_cast<double>(stats.syncs + stats.failures)
                    : 0.0,
                stats.bytes_in, stats.bytes_out);
  }
  return 0;
}
