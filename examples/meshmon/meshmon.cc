// meshmon — fleet health monitor for a replication mesh.
//
// Polls the "@stats" admin verb of every listed node, joins the per-node
// metric registries into the fleet aggregates of DESIGN.md §12 (writer
// seq vs convergence watermark, per-peer staleness, merged propagation-
// lag quantiles, session latency), and renders either a one-screen text
// dashboard or machine-readable JSON that CI asserts on.
//
//   meshmon [--json] [--watch SECONDS] [--expect-converged]
//           host:port [host:port ...]
//
//   --json              emit one flat JSON object instead of the table
//   --watch SECONDS     re-poll and re-render every SECONDS (text mode)
//   --expect-converged  exit 1 unless every node was scraped and the
//                       convergence watermark equals the writer seq
//
// A node that cannot be reached renders as `<unreachable>` and is left
// out of the aggregates; meshmon exits 0 as long as at least one node
// answered (2 when none did, 1 on --expect-converged failure).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "net/tcp.h"
#include "obs/fleet.h"
#include "server/sync_client.h"

namespace {

struct Endpoint {
  std::string display;
  std::string host;
  uint16_t port = 0;
};

bool ParseEndpoint(const std::string& arg, Endpoint* out) {
  const size_t colon = arg.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= arg.size()) {
    return false;
  }
  const long port = std::strtol(arg.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535) return false;
  out->display = arg;
  out->host = arg.substr(0, colon);
  out->port = static_cast<uint16_t>(port);
  return true;
}

rsr::obs::NodeScrape ScrapeNode(const Endpoint& endpoint) {
  rsr::obs::NodeScrape scrape;
  scrape.name = endpoint.display;
  std::unique_ptr<rsr::net::TcpStream> stream =
      rsr::net::TcpStream::Connect(endpoint.host, endpoint.port);
  if (stream == nullptr) return scrape;
  std::string text;
  if (rsr::server::FetchStats(stream.get(), &text)) {
    scrape.text = std::move(text);
  }
  return scrape;
}

int Usage() {
  std::fprintf(stderr,
               "usage: meshmon [--json] [--watch SECONDS] "
               "[--expect-converged] host:port [host:port ...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool expect_converged = false;
  double watch_seconds = 0.0;
  std::vector<Endpoint> endpoints;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--expect-converged") {
      expect_converged = true;
    } else if (arg == "--watch" && i + 1 < argc) {
      watch_seconds = std::strtod(argv[++i], nullptr);
    } else {
      Endpoint endpoint;
      if (!ParseEndpoint(arg, &endpoint)) return Usage();
      endpoints.push_back(std::move(endpoint));
    }
  }
  if (endpoints.empty()) return Usage();

  for (;;) {
    std::vector<rsr::obs::NodeScrape> scrapes;
    scrapes.reserve(endpoints.size());
    size_t reachable = 0;
    for (const Endpoint& endpoint : endpoints) {
      scrapes.push_back(ScrapeNode(endpoint));
      if (!scrapes.back().text.empty()) ++reachable;
    }
    const rsr::obs::FleetSummary fleet = rsr::obs::Aggregate(scrapes);
    if (json) {
      std::printf("%s\n", fleet.RenderJson().c_str());
    } else {
      std::printf("%s", fleet.RenderText().c_str());
    }
    std::fflush(stdout);
    if (watch_seconds <= 0.0) {
      if (reachable == 0) return 2;
      if (expect_converged &&
          (!fleet.converged || reachable != endpoints.size())) {
        return 1;
      }
      return 0;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(watch_seconds));
    if (!json) std::printf("\n");
  }
}
