// High-dimensional feature-vector reconciliation via the LSH extension.
//
// Two machine-learning pipelines extract 16-dimensional quantised feature
// vectors from overlapping image collections. Re-encoding (different JPEG
// quality) perturbs every coordinate slightly; each side also has a handful
// of images the other lacks. The quadtree protocol struggles here — its
// per-level cell ids cost d·log Δ bits and its coarsest level still splits
// the space 2^d ways — so this example uses the MLSH/RIBLT extension
// protocol, which keys points by locality-sensitive hashes and ships the
// points themselves as Robust-IBLT values.
//
// Build & run:   ./examples/feature_dedup

#include <cstdio>

#include "geometry/emd.h"
#include "recon/registry.h"
#include "workload/generator.h"

int main() {
  using namespace rsr;

  const int d = 16;
  const Universe universe = MakeUniverse(int64_t{1} << 8, d);
  const size_t n = 512;
  const size_t k = 10;

  workload::CloudSpec cloud;
  cloud.universe = universe;
  cloud.n = n;
  cloud.shape = workload::CloudShape::kUniform;
  workload::PerturbationSpec perturbation;
  perturbation.noise = workload::NoiseKind::kUniformBox;
  perturbation.noise_scale = 1.0;  // re-encoding jitter
  perturbation.outliers = k;
  const workload::ReplicaPair pair =
      workload::MakeReplicaPair(cloud, perturbation, /*seed=*/77);

  recon::ProtocolContext context;
  context.universe = universe;
  context.seed = 5;

  // Extension protocol: lattice (ℓ1) MLSH keys over a Robust IBLT.
  recon::ProtocolParams params;
  params.k = k;
  params.mlsh.family = lshrecon::MlshKind::kGridL1;  // tight d-dim boxes
  params.mlsh.width = 128.0;  // box side: >> jitter, << inter-image distance
  transport::Channel lsh_channel;
  const recon::ReconResult lsh =
      recon::MakeReconciler("mlsh-riblt", context, params)
          ->Run(pair.alice, pair.bob, &lsh_channel);

  // The quadtree for comparison.
  transport::Channel qt_channel;
  const recon::ReconResult qt =
      recon::MakeReconciler("quadtree", context, params)
          ->Run(pair.alice, pair.bob, &qt_channel);

  const double before = ExactEmd(pair.alice, pair.bob, Metric::kL2);
  const double after_lsh =
      lsh.success ? ExactEmd(pair.alice, lsh.bob_final, Metric::kL2) : -1;
  const double after_qt =
      qt.success ? ExactEmd(pair.alice, qt.bob_final, Metric::kL2) : -1;

  std::printf("feature vectors: n=%zu, d=%d, %zu new images per side\n", n,
              d, k);
  std::printf("EMD before sync:        %.0f\n", before);
  std::printf("mlsh-riblt:  success=%d  level=%d  %8.0f bytes  EMD %.0f\n",
              lsh.success, lsh.chosen_level,
              lsh_channel.stats().total_bytes(), after_lsh);
  std::printf("quadtree:    success=%d  level=%d  %8.0f bytes  EMD %.0f\n",
              qt.success, qt.chosen_level, qt_channel.stats().total_bytes(),
              after_qt);
  if (lsh.success && (!qt.success || after_lsh < after_qt)) {
    std::printf("\nthe LSH extension wins on this high-dimensional "
                "workload, as designed\n");
  }
  return lsh.success ? 0 : 1;
}
